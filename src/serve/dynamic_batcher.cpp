#include "serve/dynamic_batcher.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

#include "platform/common.hpp"
#include "platform/metrics.hpp"
#include "platform/thread_pool.hpp"
#include "platform/trace.hpp"
#include "platform/workspace.hpp"
#include "serve/journal.hpp"
#include "snicit/parallel_stream.hpp"

namespace snicit::serve {

namespace {

using platform::ErrorCode;

std::size_t default_round_limit(const ServeOptions& options) {
  if (options.round_limit != 0) return options.round_limit;
  const std::size_t workers = options.workers != 0
                                  ? options.workers
                                  : platform::ThreadPool::global().size();
  return options.max_batch * std::max<std::size_t>(2 * workers, 2);
}

std::size_t default_queue_capacity(const ServeOptions& options,
                                   std::size_t round_limit,
                                   const AdmissionController* controller) {
  std::size_t capacity = options.queue_capacity != 0
                             ? options.queue_capacity
                             : 4 * round_limit;
  // With admission control the controller's depth cap must be the
  // binding constraint — a smaller physical queue would reject below the
  // configured quota with the wrong reason.
  if (controller != nullptr) {
    capacity =
        std::max(capacity, controller->options().max_queue_depth + 1);
  }
  return capacity;
}

void reject(bool ok, const char* message) {
  if (!ok) {
    throw platform::ErrorException(
        ErrorCode::kBadInput, std::string("DynamicBatcher: ") + message);
  }
}

}  // namespace

DynamicBatcher::DynamicBatcher(dnn::InferenceEngine& engine,
                               const dnn::SparseDnn& net,
                               ServeOptions options, bool manual)
    : engine_(&engine),
      net_(&net),
      options_(std::move(options)),
      round_limit_(default_round_limit(options_)),
      packer_(make_packer(options_.packer, options_.similarity_threshold)),
      controller_(options_.controller
                      ? options_.controller
                      : (options_.admission.enabled
                             ? std::make_shared<AdmissionController>(
                                   options_.admission)
                             : nullptr)),
      queue_(default_queue_capacity(options_, round_limit_,
                                    controller_.get())),
      manual_(manual) {
  reject(options_.max_batch >= 1, "max_batch must be >= 1");
  reject(options_.batch_timeout_ms >= 0.0,
         "batch_timeout_ms must be non-negative");
  reject(options_.max_attempts >= 1, "max_attempts must be >= 1");
  reject(options_.retry_backoff_ms >= 0.0 && options_.max_backoff_ms >= 0.0,
         "retry backoff times must be non-negative");
  if (options_.tenant.empty()) {
    metric_prefix_ = "serve.";
    span_round_ = "serve.round";
    span_pack_ = "serve.pack";
  } else {
    metric_prefix_ = "serve." + options_.tenant + ".";
    span_round_ = platform::trace::intern(metric_prefix_ + "round");
    span_pack_ = platform::trace::intern(metric_prefix_ + "pack");
  }
  if (platform::metrics::enabled()) {
    auto& registry = platform::metrics::MetricsRegistry::global();
    registry.gauge(metric_prefix_ + "max_batch")
        .set(static_cast<double>(options_.max_batch));
    registry.gauge(metric_prefix_ + "workers")
        .set(static_cast<double>(options_.workers));
  }
}

DynamicBatcher::DynamicBatcher(dnn::InferenceEngine& engine,
                               const dnn::SparseDnn& net,
                               ServeOptions options, ManualDrive)
    : DynamicBatcher(engine, net, std::move(options), /*manual=*/true) {}

DynamicBatcher::DynamicBatcher(dnn::InferenceEngine& engine,
                               const dnn::SparseDnn& net,
                               ServeOptions options)
    : DynamicBatcher(engine, net, std::move(options), /*manual=*/false) {
  server_ = std::thread([this] { serve_loop(); });
}

DynamicBatcher::~DynamicBatcher() {
  queue_.close();
  if (server_.joinable()) server_.join();
}

platform::Result<std::size_t> DynamicBatcher::submit(
    std::vector<float> features, double deadline_ms, Priority priority) {
  if (features.size() != static_cast<std::size_t>(net_->neurons())) {
    return platform::Error{
        ErrorCode::kBadInput,
        "request has " + std::to_string(features.size()) +
            " features; the network expects " +
            std::to_string(net_->neurons())};
  }
  if (!(deadline_ms >= 0.0)) {
    return platform::Error{ErrorCode::kBadInput,
                           "request deadline must be non-negative"};
  }
  // Intake-side shutdown check: the server thread also closes the queue
  // when it polls between rounds, but a short-lived run can finish before
  // that poll ever sees the signal — the first submission after the
  // signal must observe the drain deterministically, not by race.
  const platform::ShutdownController& shutdown =
      options_.shutdown != nullptr ? *options_.shutdown
                                   : platform::ShutdownController::global();
  if (shutdown.requested()) {
    drained_on_signal_.store(true, std::memory_order_release);
    queue_.close();
    return platform::Error{ErrorCode::kQueueClosed,
                           "intake closed: shutdown signal received"};
  }
  if (platform::metrics::enabled()) {
    platform::metrics::MetricsRegistry::global()
        .counter(metric_prefix_ + "requests")
        .add(1);
  }
  // The journal needs the request content after the queue has consumed
  // it, so copy up front (only when durability is on).
  std::vector<float> journal_copy;
  const double arrive_ms = wall_.elapsed_ms();
  if (options_.journal != nullptr) journal_copy = features;

  platform::Result<std::size_t> id = [&]() -> platform::Result<std::size_t> {
    if (controller_ == nullptr) {
      return queue_.submit(std::move(features), deadline_ms, priority);
    }
    // Admission-controlled intake: decide now, never block the client.
    const AdmissionVerdict verdict =
        controller_->admit(options_.tenant, priority, arrive_ms);
    if (!verdict.admitted) {
      return verdict.to_error(options_.tenant);
    }
    auto admitted =
        queue_.try_submit(std::move(features), deadline_ms, priority);
    if (!admitted.ok()) {
      // Physical queue refused after the controller admitted (closed, or
      // a capacity misconfigured below the quota): roll the depth back so
      // the controller's view stays true.
      controller_->on_collected(options_.tenant, 1);
    }
    return admitted;
  }();

  if (id.ok() && options_.journal != nullptr) {
    JournalAdmit admit;
    admit.id = id.value();
    admit.tenant = options_.tenant;
    admit.sample = id.value();  // live requests have no pool; see features
    admit.priority = priority;
    admit.arrive_ms = arrive_ms;
    admit.deadline_ms = deadline_ms;
    admit.features = std::move(journal_copy);
    if (!options_.journal->append_admit(admit).ok()) {
      journal_errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return id;
}

bool DynamicBatcher::drive(double wait_ms) {
  SNICIT_CHECK(manual_, "drive() requires the manual-drive batcher mode");
  // Never block on an idle intake: collect() waits indefinitely for a
  // first arrival, which would wedge a round-robin driver on one quiet
  // lane while its other lanes have work (and blind it to hot swaps).
  if (queue_.size() == 0) return false;
  if (controller_ != nullptr) {
    wait_ms = controller_->effective_timeout_ms(wait_ms);
  }
  std::vector<ServeRequest> requests = queue_.collect(round_limit_, wait_ms);
  if (requests.empty()) return false;
  serve_round(std::move(requests));
  return true;
}

void DynamicBatcher::rebind(dnn::InferenceEngine& engine,
                            const dnn::SparseDnn& net) {
  SNICIT_CHECK(manual_, "rebind() requires the manual-drive batcher mode");
  SNICIT_CHECK(net.neurons() == net_->neurons(),
               "rebind() must keep the neuron count (queued requests have "
               "fixed-length features)");
  engine_ = &engine;
  net_ = &net;
}

ServeReport DynamicBatcher::finish() {
  queue_.close();
  if (server_.joinable()) server_.join();
  if (manual_) {
    // Drain on the caller's thread (the Router joins its driver before
    // finishing lanes, so this is the only driver left).
    while (drive(0.0)) {
    }
  }
  if (finished_) return {};
  finished_ = true;
  report_.requests = queue_.issued();
  report_.total_ms = wall_.elapsed_ms();
  report_.journal_errors = journal_errors_.load(std::memory_order_relaxed);
  report_.drained_on_signal =
      drained_on_signal_.load(std::memory_order_acquire);
  return std::move(report_);
}

void DynamicBatcher::journal_terminal(const RequestResult& slot) {
  if (options_.journal == nullptr) return;
  JournalComplete complete;
  complete.id = slot.id;
  complete.code = slot.code;
  complete.output_digest = slot.ok() ? output_digest64(slot.output) : 0;
  if (!options_.journal->append_complete(complete).ok()) {
    journal_errors_.fetch_add(1, std::memory_order_relaxed);
  }
}

RequestResult& DynamicBatcher::result_slot(std::size_t id) {
  if (report_.results.size() <= id) report_.results.resize(id + 1);
  report_.results[id].id = id;
  return report_.results[id];
}

void DynamicBatcher::serve_loop() {
  const platform::ShutdownController& shutdown =
      options_.shutdown != nullptr ? *options_.shutdown
                                   : platform::ShutdownController::global();
  while (true) {
    // Signal-driven drain: a delivered SIGTERM/SIGINT closes the intake
    // here, on the server thread — requests already accepted are still
    // served, and the report records how the session ended.
    if (shutdown.requested() && !queue_.closed()) {
      queue_.close();
      drained_on_signal_.store(true, std::memory_order_release);
    }
    const double wait_ms =
        controller_ != nullptr
            ? controller_->effective_timeout_ms(options_.batch_timeout_ms)
            : options_.batch_timeout_ms;
    std::vector<ServeRequest> requests = queue_.collect(
        round_limit_, wait_ms, options_.shutdown_poll_ms);
    if (requests.empty()) {
      if (queue_.closed() && queue_.size() == 0) break;  // drained
      continue;  // idle poll: re-check the shutdown flag
    }
    serve_round(std::move(requests));
  }
}

void DynamicBatcher::serve_round(std::vector<ServeRequest> requests) {
  SNICIT_TRACE_SPAN(span_round_, "serve");
  namespace metrics = platform::metrics;
  const bool instrumented = metrics::enabled();
  const std::size_t collected = requests.size();
  const std::size_t round = report_.rounds++;
  if (controller_ != nullptr) {
    controller_->on_collected(options_.tenant, collected);
  }
  const BrownoutLevel brownout = controller_ != nullptr
                                     ? controller_->level()
                                     : BrownoutLevel::kNormal;

  // Deadline triage: a request whose budget expired while queued fails
  // with kTimeout instead of burning engine time it can no longer use.
  // Under admission control, sheddable requests the feasibility
  // predictor declares doomed are shed here too — refusing to spend
  // engine time on output that will be thrown away is the whole point.
  std::vector<ServeRequest> live;
  std::vector<double> waited;
  live.reserve(requests.size());
  waited.reserve(requests.size());
  for (auto& request : requests) {
    const double queue_ms = request.age.elapsed_ms();
    if (request.deadline_ms > 0.0 && queue_ms > request.deadline_ms) {
      RequestResult& slot = result_slot(request.id);
      slot.code = ErrorCode::kTimeout;
      slot.message = "deadline of " + std::to_string(request.deadline_ms) +
                     " ms expired after " + std::to_string(queue_ms) +
                     " ms in queue";
      slot.queue_ms = queue_ms;
      slot.latency_ms = queue_ms;
      slot.round = round;
      report_.timed_out_requests += 1;
      report_.queue_wait.add(queue_ms);
      report_.latency.add(queue_ms);
      journal_terminal(slot);
      if (controller_ != nullptr) {
        controller_->record_timeout(options_.tenant, request.id,
                                    request.priority, wall_.elapsed_ms());
      }
      if (instrumented) {
        metrics::MetricsRegistry::global()
            .counter(metric_prefix_ + "timeouts")
            .add(1);
      }
      continue;
    }
    if (controller_ != nullptr &&
        request.priority == Priority::kSheddable &&
        request.deadline_ms > 0.0) {
      const double slack_ms = request.deadline_ms - queue_ms;
      if (controller_->infeasible(slack_ms, live.size() + 1)) {
        RequestResult& slot = result_slot(request.id);
        slot.code = ErrorCode::kRejectedOverload;
        slot.message = "shed: " + std::to_string(slack_ms) +
                       " ms of budget left, batch estimated at " +
                       std::to_string(
                           controller_->estimate_ms(live.size() + 1)) +
                       " ms";
        slot.queue_ms = queue_ms;
        slot.latency_ms = queue_ms;
        slot.round = round;
        report_.shed_requests += 1;
        report_.queue_wait.add(queue_ms);
        report_.latency.add(queue_ms);
        journal_terminal(slot);
        controller_->record_shed(options_.tenant, request.id,
                                 request.priority, slack_ms,
                                 wall_.elapsed_ms());
        if (instrumented) {
          metrics::MetricsRegistry::global()
              .counter(metric_prefix_ + "shed")
              .add(1);
        }
        continue;
      }
    }
    waited.push_back(queue_ms);
    live.push_back(std::move(request));
  }
  if (live.empty()) {
    completed_.fetch_add(collected, std::memory_order_release);
    return;
  }
  const std::size_t n = live.size();

  // Signatures + packed order. The permutation is validated — a packer
  // that drops or duplicates a position would silently misroute outputs.
  std::vector<Signature> signatures(n);
  for (std::size_t i = 0; i < n; ++i) {
    signatures[i] = input_signature(live[i].features);
  }
  // Brownout level >= 2 forces FIFO packing: under pressure the round
  // stops paying for similarity clustering. Level >= 3 additionally
  // reroutes to the economy engine tier when one is bound.
  BatchPacker& round_packer =
      static_cast<int>(brownout) >=
              static_cast<int>(BrownoutLevel::kFifoPack)
          ? static_cast<BatchPacker&>(fifo_packer_)
          : *packer_;
  dnn::InferenceEngine* round_engine =
      static_cast<int>(brownout) >=
                  static_cast<int>(BrownoutLevel::kEconomyTier) &&
              economy_engine_ != nullptr
          ? economy_engine_
          : engine_;
  std::vector<std::size_t> order;
  {
    SNICIT_TRACE_SPAN(span_pack_, "serve");
    order = round_packer.pack(signatures, options_.max_batch);
  }
  SNICIT_CHECK(order.size() == n, "packer must emit one slot per request");
  {
    std::vector<std::uint8_t> seen(n, 0);
    for (const std::size_t p : order) {
      SNICIT_CHECK(p < n && !seen[p], "packer order must be a permutation");
      seen[p] = 1;
    }
  }

  const std::size_t rows = static_cast<std::size_t>(net_->neurons());
  dnn::DenseMatrix input(rows, n);
  for (std::size_t p = 0; p < n; ++p) {
    std::copy_n(live[order[p]].features.data(), rows, input.col(p));
  }

  if (!executor_) {
    // One executor for the batcher's lifetime: its per-lane scratch
    // (workspaces, cycled results) warms on the first round and is
    // reused by every later one.
    core::ParallelStreamOptions popt;
    popt.batch_size = options_.max_batch;
    popt.keep_rows = options_.keep_rows;
    popt.workers = options_.workers;
    popt.max_attempts = options_.max_attempts;
    popt.retry_backoff_ms = options_.retry_backoff_ms;
    popt.max_backoff_ms = options_.max_backoff_ms;
    executor_ = std::make_unique<core::ParallelStreamExecutor>(popt);
  }
  const core::ParallelStreamExecutor& executor = *executor_;

  const std::size_t num_batches =
      (n + options_.max_batch - 1) / options_.max_batch;

  // Engine-side attribution baseline: SNICIT's fallback counter and
  // post-conversion residue gauge are recorded globally by the engine;
  // sampling them around the round pins their deltas on this batcher's
  // tenant (exact whenever rounds are serialized process-wide — the
  // single-batcher case and the Router's round-robin driver both are).
  metrics::Counter* engine_fallbacks = nullptr;
  std::int64_t fallbacks_before = 0;
  if (instrumented) {
    engine_fallbacks =
        &metrics::MetricsRegistry::global().counter("snicit.fallbacks");
    fallbacks_before = engine_fallbacks->get();
  }

  core::StreamResult streamed;
  bool round_failed = false;
  platform::Error round_error;
  try {
    streamed = executor.run(*round_engine, *net_, input);
  } catch (const platform::ErrorException& e) {
    round_failed = true;
    round_error = e.error();
  } catch (const std::exception& e) {
    // Serial-path engine exceptions (one worker / few batches) have no
    // retry machinery; they cost this round, never the server thread.
    round_failed = true;
    round_error = {ErrorCode::kWorkerFault, e.what()};
  }

  metrics::Series* fill_series = nullptr;
  metrics::Series* similarity_series = nullptr;
  metrics::Series* wait_series = nullptr;
  if (instrumented) {
    auto& registry = metrics::MetricsRegistry::global();
    registry.counter(metric_prefix_ + "rounds").add(1);
    registry.counter(metric_prefix_ + "batches")
        .add(static_cast<std::int64_t>(num_batches));
    fill_series = &registry.series(metric_prefix_ + "batch_fill");
    similarity_series =
        &registry.series(metric_prefix_ + "batch_similarity");
    wait_series = &registry.series(metric_prefix_ + "queue_wait_ms");
    const std::int64_t fallback_delta =
        engine_fallbacks->get() - fallbacks_before;
    if (fallback_delta > 0) {
      registry.counter(metric_prefix_ + "fallbacks").add(fallback_delta);
    }
    if (round_engine->name().rfind("SNICIT", 0) == 0) {
      registry.gauge(metric_prefix_ + "conversion_residue_nnz")
          .set(registry.gauge("snicit.conversion_residue_nnz").get());
    }
    // Steady-state memory health of the serving lanes: reserved scratch
    // bytes plus any allocation events after warm-up (0 when healthy).
    platform::Workspace::publish_metrics();
    if (!round_failed) {
      if (streamed.retries > 0) {
        registry.counter(metric_prefix_ + "retries")
            .add(static_cast<std::int64_t>(streamed.retries));
      }
      if (streamed.degraded_batches > 0) {
        registry.counter(metric_prefix_ + "degraded_batches")
            .add(static_cast<std::int64_t>(streamed.degraded_batches));
      }
    }
  }

  // Per-batch ledger + per-request results, routed back through the
  // packed order (column p of the round matrix is live[order[p]]).
  std::vector<const core::BatchFailure*> failure_of(num_batches, nullptr);
  if (!round_failed) {
    for (const auto& failure : streamed.failures) {
      failure_of[failure.batch] = &failure;
    }
    report_.retries += streamed.retries;
    report_.degraded_batches += streamed.degraded_batches;
  }
  for (std::size_t j = 0; j < num_batches; ++j) {
    const std::size_t begin = j * options_.max_batch;
    const std::size_t end = std::min(n, begin + options_.max_batch);
    ServeBatchRecord record;
    record.round = round;
    record.batch = report_.batches + j;
    record.request_ids.reserve(end - begin);
    std::vector<Signature> batch_sigs;
    batch_sigs.reserve(end - begin);
    for (std::size_t p = begin; p < end; ++p) {
      record.request_ids.push_back(live[order[p]].id);
      batch_sigs.push_back(signatures[order[p]]);
    }
    record.fill = static_cast<double>(end - begin) /
                  static_cast<double>(options_.max_batch);
    record.similarity = mean_pairwise_similarity(batch_sigs);
    if (round_failed) {
      record.failed = true;
      record.code = round_error.code;
    } else {
      record.engine_ms = streamed.batch_ms[j];
      if (failure_of[j] != nullptr) {
        record.failed = true;
        record.code = failure_of[j]->code;
      }
    }
    if (fill_series != nullptr) {
      fill_series->push(record.fill);
      similarity_series->push(record.similarity);
    }

    for (std::size_t p = begin; p < end; ++p) {
      const ServeRequest& request = live[order[p]];
      if (controller_ != nullptr) {
        controller_->record_dispatch(options_.tenant, request.id,
                                     request.priority,
                                     static_cast<double>(record.batch),
                                     wall_.elapsed_ms());
      }
      RequestResult& slot = result_slot(request.id);
      slot.round = round;
      slot.batch = record.batch;
      slot.batch_cols = end - begin;
      slot.queue_ms = waited[order[p]];
      slot.latency_ms = request.age.elapsed_ms();
      report_.queue_wait.add(slot.queue_ms);
      report_.latency.add(slot.latency_ms);
      if (wait_series != nullptr) wait_series->push(slot.queue_ms);
      if (round_failed) {
        slot.code = round_error.code;
        slot.message = round_error.message;
        report_.failed_requests += 1;
      } else if (failure_of[j] != nullptr) {
        slot.code = failure_of[j]->code;
        slot.message = failure_of[j]->message;
        slot.attempts = failure_of[j]->attempts;
        slot.batch_ms = streamed.batch_ms[j];
        report_.failed_requests += 1;
      } else {
        slot.code = ErrorCode::kOk;
        // Per-batch retries are not attributed on success; the session
        // total lives in ServeReport::retries.
        slot.attempts = 1;
        slot.batch_ms = streamed.batch_ms[j];
        slot.output.assign(streamed.outputs.col(p),
                           streamed.outputs.col(p) + streamed.outputs.rows());
      }
      // The completion lands in the journal after the output is
      // assigned — the digest covers the delivered bits.
      journal_terminal(slot);
    }
    if (instrumented && record.failed) {
      metrics::MetricsRegistry::global()
          .counter(metric_prefix_ + "failed_requests")
          .add(static_cast<std::int64_t>(end - begin));
    }
    report_.batch_log.push_back(std::move(record));
  }
  report_.batches += num_batches;
  if (controller_ != nullptr) {
    // Close the control loop: this round's engine time (and, for SNICIT
    // engines, the post-conversion residue gauge) feeds the cost model;
    // re-evaluated pressure steps the brownout ladder.
    double residue_nnz = 0.0;
    if (instrumented && round_engine->name().rfind("SNICIT", 0) == 0) {
      residue_nnz = metrics::MetricsRegistry::global()
                        .gauge("snicit.conversion_residue_nnz")
                        .get();
    }
    controller_->on_round(options_.tenant, n,
                          round_failed ? 0.0 : streamed.total_ms,
                          residue_nnz, wall_.elapsed_ms());
    report_.max_brownout_level =
        std::max(report_.max_brownout_level,
                 static_cast<int>(controller_->level()));
  }
  completed_.fetch_add(collected, std::memory_order_release);
}

}  // namespace snicit::serve
