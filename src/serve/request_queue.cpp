#include "serve/request_queue.hpp"

#include <algorithm>
#include <chrono>

#include "platform/common.hpp"

namespace snicit::serve {

namespace {
using Clock = std::chrono::steady_clock;

Clock::duration from_ms(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}
}  // namespace

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {}

platform::Result<std::size_t> RequestQueue::enqueue_locked(
    std::unique_lock<std::mutex>& lock, std::vector<float> features,
    double deadline_ms, Priority priority) {
  const std::size_t id = next_id_++;
  pending_.push_back(ServeRequest{id, std::move(features), deadline_ms,
                                  priority, {}});
  lock.unlock();
  not_empty_.notify_one();
  return id;
}

platform::Result<std::size_t> RequestQueue::submit(
    std::vector<float> features, double deadline_ms, Priority priority) {
  std::unique_lock<std::mutex> lock(mutex_);
  // A zero-capacity queue never has space — report overload, not a
  // shutdown, and do not wait for space that cannot appear. The closed
  // check still wins: retrying a closed queue is pointless and the error
  // must say so.
  if (capacity_ == 0) {
    if (closed_) {
      return platform::Error{platform::ErrorCode::kQueueClosed,
                             "request queue is closed"};
    }
    return platform::Error{platform::ErrorCode::kRejectedOverload,
                           "request queue has zero capacity"};
  }
  not_full_.wait(lock,
                 [this] { return closed_ || pending_.size() < capacity_; });
  if (closed_) {
    return platform::Error{platform::ErrorCode::kQueueClosed,
                           "request queue is closed"};
  }
  return enqueue_locked(lock, std::move(features), deadline_ms, priority);
}

platform::Result<std::size_t> RequestQueue::try_submit(
    std::vector<float> features, double deadline_ms, Priority priority) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) {
    return platform::Error{platform::ErrorCode::kQueueClosed,
                           "request queue is closed"};
  }
  if (pending_.size() >= capacity_ || capacity_ == 0) {
    return platform::Error{platform::ErrorCode::kRejectedOverload,
                           "request queue is full"};
  }
  return enqueue_locked(lock, std::move(features), deadline_ms, priority);
}

std::vector<ServeRequest> RequestQueue::collect(std::size_t limit,
                                                double wait_ms,
                                                double max_idle_ms) {
  std::vector<ServeRequest> out;
  std::unique_lock<std::mutex> lock(mutex_);
  if (max_idle_ms < 0.0) {
    not_empty_.wait(lock, [this] { return closed_ || !pending_.empty(); });
  } else {
    // Idle-bounded wait: a drain loop polling a shutdown flag cannot
    // afford to sleep forever inside an empty queue.
    not_empty_.wait_for(lock, from_ms(max_idle_ms),
                        [this] { return closed_ || !pending_.empty(); });
  }
  if (pending_.empty()) return out;  // closed-and-drained, or idle timeout

  // Fill window: wait for more arrivals, but never let the wait eat the
  // deadline budget of a request already pending.
  if (pending_.size() < limit && !closed_ && wait_ms > 0.0) {
    const auto fill_deadline = Clock::now() + from_ms(wait_ms);
    while (pending_.size() < limit && !closed_) {
      auto until = fill_deadline;
      for (const auto& request : pending_) {
        if (request.deadline_ms <= 0.0) continue;
        const double slack_ms =
            request.deadline_ms - request.age.elapsed_ms();
        const auto urgent = Clock::now() + from_ms(std::max(slack_ms, 0.0));
        until = std::min(until, urgent);
      }
      if (until <= Clock::now()) break;
      not_empty_.wait_until(lock, until);
      if (Clock::now() >= until && until == fill_deadline) break;
    }
  }

  // Take the highest priority classes first; arrival order within a
  // class (stable sort over positions keeps FIFO behaviour when every
  // request is standard, so the pre-priority batcher sees no change).
  const std::size_t n = std::min(limit, pending_.size());
  std::vector<std::size_t> order(pending_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return static_cast<int>(pending_[a].priority) >
                            static_cast<int>(pending_[b].priority);
                   });
  order.resize(n);
  out.reserve(n);
  for (std::size_t i : order) out.push_back(std::move(pending_[i]));
  std::sort(order.begin(), order.end());
  for (std::size_t i = order.size(); i-- > 0;) {
    pending_.erase(pending_.begin() +
                   static_cast<std::ptrdiff_t>(order[i]));
  }
  lock.unlock();
  not_full_.notify_all();
  return out;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

std::size_t RequestQueue::issued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_id_;
}

}  // namespace snicit::serve
