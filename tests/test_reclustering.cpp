// Tests of the optional periodic re-clustering feature (the design
// alternative §3.2.2 discusses and rejects — implemented to quantify it).
#include <gtest/gtest.h>

#include <string>

#include "data/synthetic.hpp"
#include "platform/error.hpp"
#include "dnn/reference.hpp"
#include "radixnet/radixnet.hpp"
#include "snicit/engine.hpp"

namespace snicit::core {
namespace {

struct Workload {
  dnn::SparseDnn net;
  dnn::DenseMatrix input;
};

Workload make_workload() {
  radixnet::RadixNetOptions opt;
  opt.neurons = 128;
  opt.layers = 24;
  opt.fanin = 16;
  opt.seed = 12;
  auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = 128;
  in_opt.batch = 40;
  in_opt.seed = 13;
  auto input = data::make_sdgc_input(in_opt).features;
  return {std::move(net), std::move(input)};
}

SnicitParams base_params() {
  SnicitParams p;
  p.threshold_layer = 8;
  p.sample_size = 16;
  p.downsample_dim = 0;
  return p;
}

TEST(Reclustering, StillMatchesReference) {
  auto wl = make_workload();
  const auto expected = dnn::reference_forward(wl.net, wl.input);
  for (int interval : {1, 3, 7, 100}) {
    auto params = base_params();
    params.reconvert_interval = interval;
    SnicitEngine engine(params);
    const auto result = engine.run(wl.net, wl.input);
    EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, expected),
              5e-3f)
        << "interval " << interval;
  }
}

TEST(Reclustering, ZeroDisables) {
  auto wl = make_workload();
  auto off = base_params();
  off.reconvert_interval = 0;
  // An interval beyond the post-convergence depth never fires either, so
  // the two runs must be bitwise identical.
  auto beyond = base_params();
  beyond.reconvert_interval = 1000;
  SnicitEngine a(off);
  SnicitEngine b(beyond);
  const auto ya = a.run(wl.net, wl.input).output;
  const auto yb = b.run(wl.net, wl.input).output;
  EXPECT_FLOAT_EQ(dnn::DenseMatrix::max_abs_diff(ya, yb), 0.0f);
}

TEST(Reclustering, CentroidsRefreshWithPruning) {
  // With pruning enabled, re-clustering replaces accumulated residues by
  // fresh ones against up-to-date centroids; results stay within the
  // pruning tolerance envelope of the reference.
  auto wl = make_workload();
  const auto expected = dnn::reference_forward(wl.net, wl.input);
  auto params = base_params();
  params.prune_threshold = 0.02f;
  params.reconvert_interval = 4;
  SnicitEngine engine(params);
  const auto result = engine.run(wl.net, wl.input);
  EXPECT_DOUBLE_EQ(
      dnn::category_match_rate(dnn::sdgc_categories(result.output, 1e-3f),
                               dnn::sdgc_categories(expected, 1e-3f)),
      1.0);
}

TEST(RechusteringDeathTest, NegativeIntervalRejected) {
  // Engine construction validates caller-supplied params with typed
  // errors (kBadInput) rather than invariant aborts.
  try {
    SnicitParams params;
    params.reconvert_interval = -1;
    SnicitEngine engine(params);
    FAIL() << "expected ErrorException";
  } catch (const platform::ErrorException& e) {
    EXPECT_EQ(e.code(), platform::ErrorCode::kBadInput);
    EXPECT_NE(std::string(e.what()).find("reconvert_interval"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace snicit::core
