#include "snicit/convergence.hpp"

#include <gtest/gtest.h>

#include "platform/rng.hpp"

namespace snicit::core {
namespace {

/// Batch whose columns all equal `value` (fully clustered).
DenseMatrix uniform_batch(std::size_t n, std::size_t b, float value) {
  return DenseMatrix(n, b, value);
}

/// Batch of mutually distant columns (no clustering).
DenseMatrix scattered_batch(std::size_t n, std::size_t b) {
  DenseMatrix y(n, b);
  for (std::size_t j = 0; j < b; ++j) {
    for (std::size_t r = 0; r < n; ++r) {
      y.at(r, j) = static_cast<float>(j) * 10.0f +
                   static_cast<float>(r % 7) * 0.5f;
    }
  }
  return y;
}

TEST(ConvergenceDetector, NeedsTwoClusteredLayers) {
  ConvergenceDetector det(0.05f, 0.01f);
  const auto y = uniform_batch(64, 16, 1.0f);
  EXPECT_FALSE(det.observe(y));  // first clustered layer
  EXPECT_TRUE(det.observe(y));   // second -> converged
  EXPECT_TRUE(det.converged());
  EXPECT_DOUBLE_EQ(det.last_distance(), 0.0);
}

TEST(ConvergenceDetector, ScatteredBatchNeverConverges) {
  ConvergenceDetector det(0.05f, 0.01f);
  const auto y = scattered_batch(64, 16);
  for (int layer = 0; layer < 10; ++layer) {
    EXPECT_FALSE(det.observe(y));
  }
  EXPECT_GT(det.last_distance(), 0.5);
}

TEST(ConvergenceDetector, ValuesMayChangeAcrossLayersWhileClustered) {
  // The essential semantics: convergence is columns matching EACH OTHER,
  // not staying constant over layers (weights differ per layer).
  ConvergenceDetector det(0.05f, 0.01f);
  EXPECT_FALSE(det.observe(uniform_batch(32, 8, 1.0f)));
  EXPECT_TRUE(det.observe(uniform_batch(32, 8, 7.0f)));  // new value, still
                                                         // clustered
}

TEST(ConvergenceDetector, DeclusteringResetsTheStreak) {
  ConvergenceDetector det(0.05f, 0.01f);
  det.observe(uniform_batch(32, 8, 1.0f));   // hit 1
  EXPECT_FALSE(det.observe(scattered_batch(32, 8)));  // reset
  EXPECT_FALSE(det.observe(uniform_batch(32, 8, 2.0f)));  // hit 1
  EXPECT_TRUE(det.observe(uniform_batch(32, 8, 3.0f)));   // hit 2
}

TEST(ConvergenceDetector, ToleratesSubEtaJitter) {
  ConvergenceDetector det(0.05f, 0.1f);
  platform::Rng rng(5);
  DenseMatrix y(32, 8, 1.0f);
  for (std::size_t i = 0; i < 32 * 8; ++i) {
    y.data()[i] += rng.uniform(-0.04f, 0.04f);  // columns differ < eta
  }
  EXPECT_FALSE(det.observe(y));
  EXPECT_TRUE(det.observe(y));
}

TEST(ConvergenceDetector, TwoClusterBatchConverges) {
  // Clusters need not be a single attractor: any near-duplicate structure
  // gives every column a near neighbour.
  ConvergenceDetector det(0.05f, 0.01f);
  DenseMatrix y(32, 8);
  for (std::size_t j = 0; j < 8; ++j) {
    const float v = (j % 2 == 0) ? 1.0f : 5.0f;
    for (std::size_t r = 0; r < 32; ++r) y.at(r, j) = v;
  }
  det.observe(y);
  EXPECT_TRUE(det.observe(y));
}

TEST(ConvergenceDetector, PartialClusteringScoresBetweenExtremes) {
  ConvergenceDetector det(0.5f, 0.01f, 8, 64);
  // Columns agree on the first half of rows, differ on the second.
  DenseMatrix y(64, 8, 1.0f);
  for (std::size_t j = 0; j < 8; ++j) {
    for (std::size_t r = 32; r < 64; ++r) {
      y.at(r, j) = static_cast<float>(j * 100 + r);
    }
  }
  det.observe(y);
  EXPECT_NEAR(det.last_distance(), 0.5, 0.05);
}

TEST(ConvergenceDetector, ResetClearsState) {
  ConvergenceDetector det(0.05f, 0.01f);
  det.observe(uniform_batch(16, 4, 1.0f));
  det.observe(uniform_batch(16, 4, 1.0f));
  ASSERT_TRUE(det.converged());
  det.reset();
  EXPECT_FALSE(det.converged());
  EXPECT_DOUBLE_EQ(det.last_distance(), 1.0);
}

TEST(ConvergenceDetector, DegenerateInputsIgnored) {
  ConvergenceDetector det;
  DenseMatrix empty;
  EXPECT_FALSE(det.observe(empty));
  DenseMatrix single(8, 1, 1.0f);  // one column: no neighbour to compare
  EXPECT_FALSE(det.observe(single));
  EXPECT_FALSE(det.converged());
}

}  // namespace
}  // namespace snicit::core
