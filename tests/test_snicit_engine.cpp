#include "snicit/engine.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "platform/thread_pool.hpp"
#include "radixnet/radixnet.hpp"

namespace snicit::core {
namespace {

struct TestNet {
  dnn::SparseDnn net;
  dnn::DenseMatrix input;
};

TestNet make_test_net(int layers = 16, std::uint64_t seed = 2,
                      sparse::Index neurons = 128, std::size_t batch = 48) {
  radixnet::RadixNetOptions opt;
  opt.neurons = neurons;
  opt.layers = layers;
  opt.fanin = 16;
  opt.seed = seed;
  auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = static_cast<std::size_t>(neurons);
  in_opt.batch = batch;
  in_opt.classes = 6;
  in_opt.seed = seed + 100;
  auto input = data::make_sdgc_input(in_opt).features;
  return {std::move(net), std::move(input)};
}

SnicitParams default_params(int t) {
  SnicitParams p;
  p.threshold_layer = t;
  p.sample_size = 16;
  p.downsample_dim = 0;  // exact column comparison at this small scale
  p.prune_threshold = 0.0f;
  return p;
}

TEST(SnicitEngine, MatchesReferenceWithoutPruning) {
  auto [net, input] = make_test_net();
  SnicitEngine engine(default_params(8));
  const auto result = engine.run(net, input);
  const auto expected = dnn::reference_forward(net, input);
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, expected), 5e-3f);
  // Categories must agree exactly (the SDGC golden-reference criterion).
  EXPECT_DOUBLE_EQ(
      dnn::category_match_rate(dnn::sdgc_categories(result.output, 1e-3f),
                               dnn::sdgc_categories(expected, 1e-3f)),
      1.0);
}

TEST(SnicitEngine, ReportsAllFourStages) {
  auto [net, input] = make_test_net();
  SnicitEngine engine(default_params(8));
  const auto result = engine.run(net, input);
  EXPECT_GT(result.stages.get("pre-convergence"), 0.0);
  EXPECT_GT(result.stages.get("conversion"), 0.0);
  EXPECT_GT(result.stages.get("post-convergence"), 0.0);
  EXPECT_GE(result.stages.get("recovery"), 0.0);
  EXPECT_EQ(result.stages.entries().size(), 4u);
  EXPECT_EQ(result.layer_ms.size(), net.num_layers());
}

TEST(SnicitEngine, ThresholdZeroConvertsInput) {
  auto [net, input] = make_test_net(8);
  SnicitEngine engine(default_params(0));
  const auto result = engine.run(net, input);
  const auto expected = dnn::reference_forward(net, input);
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, expected), 5e-3f);
  EXPECT_DOUBLE_EQ(result.diagnostics.at("threshold_layer"), 0.0);
}

TEST(SnicitEngine, ThresholdAtDepthFallsBackToPureFeedForward) {
  auto [net, input] = make_test_net(6);
  SnicitEngine engine(default_params(6));
  const auto result = engine.run(net, input);
  const auto expected = dnn::reference_forward(net, input);
  // Pure feed-forward path: same kernels as the reference, tolerance only
  // for kernel-order float differences (scatter vs gather).
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, expected), 1e-4f);
  EXPECT_DOUBLE_EQ(result.diagnostics.at("centroids"), 0.0);
}

TEST(SnicitEngine, ThresholdBeyondDepthIsClamped) {
  auto [net, input] = make_test_net(6);
  SnicitEngine engine(default_params(99));
  const auto result = engine.run(net, input);
  EXPECT_DOUBLE_EQ(result.diagnostics.at("threshold_layer"), 6.0);
}

TEST(SnicitEngine, AllPreKernelsProduceSameCategories) {
  auto [net, input] = make_test_net();
  const auto expected = dnn::reference_forward(net, input);
  for (auto kernel :
       {PreKernel::kGather, PreKernel::kScatter, PreKernel::kTiled}) {
    auto params = default_params(8);
    params.pre_kernel = kernel;
    SnicitEngine engine(params);
    const auto result = engine.run(net, input);
    EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, expected), 5e-3f)
        << "kernel " << static_cast<int>(kernel);
  }
}

TEST(SnicitEngine, TopCategoriesInvariantUnderEverySpmmVariant) {
  // The SDGC scoring criterion must not depend on which kernel the
  // autotuner picks: force every variant (plus auto) through both phases.
  auto [net, input] = make_test_net();
  const auto expected = dnn::reference_forward(net, input);
  const auto golden_cats = dnn::sdgc_categories(expected, 1e-3f);
  for (int i = -1; i < sparse::kNumSpmmVariants; ++i) {
    auto params = default_params(8);
    params.spmm.variant = static_cast<sparse::SpmmVariant>(i);
    SnicitEngine engine(params);
    const auto result = engine.run(net, input);
    EXPECT_DOUBLE_EQ(
        dnn::category_match_rate(dnn::sdgc_categories(result.output, 1e-3f),
                                 golden_cats),
        1.0)
        << "variant " << sparse::to_string(params.spmm.variant);
  }
}

TEST(SnicitEngine, TopCategoriesInvariantUnderSerialRegion) {
  // One pool worker vs the full pool must score identically (kernels are
  // order-deterministic; only the arm selection may legitimately differ).
  auto [net, input] = make_test_net();
  const auto expected = dnn::reference_forward(net, input);
  const auto golden_cats = dnn::sdgc_categories(expected, 1e-3f);
  platform::ScopedSerialRegion serial;
  SnicitEngine engine(default_params(8));
  const auto result = engine.run(net, input);
  EXPECT_DOUBLE_EQ(
      dnn::category_match_rate(dnn::sdgc_categories(result.output, 1e-3f),
                               golden_cats),
      1.0);
}

TEST(SnicitEngine, TraceRecordsPostConvergenceCompression) {
  auto [net, input] = make_test_net(20, 5);
  auto params = default_params(10);
  params.record_trace = true;
  SnicitEngine engine(params);
  engine.run(net, input);
  const auto& trace = engine.last_trace();
  EXPECT_EQ(trace.threshold_layer, 10);
  EXPECT_GE(trace.centroid_count, 1u);
  ASSERT_EQ(trace.ne_count.size(), 10u);  // 20 - 10 post layers
  // Non-empty count never exceeds the batch and includes the centroids.
  for (auto c : trace.ne_count) {
    EXPECT_GE(c, trace.centroid_count);
    EXPECT_LE(c, input.cols());
  }
}

TEST(SnicitEngine, PruningTradesAccuracyMonotonically) {
  auto [net, input] = make_test_net(16, 8);
  const auto expected = dnn::reference_forward(net, input);
  auto p0 = default_params(8);
  p0.prune_threshold = 0.0f;
  auto p1 = default_params(8);
  p1.prune_threshold = 0.02f;
  SnicitEngine e0(p0);
  SnicitEngine e1(p1);
  const float err0 =
      dnn::DenseMatrix::max_abs_diff(e0.run(net, input).output, expected);
  const float err1 =
      dnn::DenseMatrix::max_abs_diff(e1.run(net, input).output, expected);
  EXPECT_LE(err0, err1 + 1e-6f);
}

TEST(SnicitEngine, AutoThresholdPicksEarlierLayer) {
  auto [net, input] = make_test_net(24, 3);
  auto params = default_params(24);  // upper bound: whole net
  params.auto_threshold = true;
  params.auto_level = 0.05f;
  params.record_trace = true;
  SnicitEngine engine(params);
  const auto result = engine.run(net, input);
  const auto expected = dnn::reference_forward(net, input);
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, expected), 5e-3f);
  // On a saturating SDGC-style net the detector should fire well before
  // the bound.
  EXPECT_LT(engine.last_trace().threshold_layer, 24);
  EXPECT_GE(engine.last_trace().threshold_layer, 1);
}

TEST(SnicitEngine, NeRefreshIntervalDoesNotChangeResults) {
  auto [net, input] = make_test_net(18, 6);
  auto p_every = default_params(6);
  p_every.ne_refresh_interval = 1;
  auto p_rare = default_params(6);
  p_rare.ne_refresh_interval = 200;
  SnicitEngine a(p_every);
  SnicitEngine b(p_rare);
  const auto ya = a.run(net, input).output;
  const auto yb = b.run(net, input).output;
  EXPECT_FLOAT_EQ(dnn::DenseMatrix::max_abs_diff(ya, yb), 0.0f);
}

TEST(SnicitEngine, PostKernelsAgree) {
  auto [net, input] = make_test_net(18, 7);
  auto p_scatter = default_params(8);
  p_scatter.post_kernel = PreKernel::kScatter;
  auto p_gather = default_params(8);
  p_gather.post_kernel = PreKernel::kGather;
  SnicitEngine a(p_scatter);
  SnicitEngine b(p_gather);
  const auto ya = a.run(net, input).output;
  const auto yb = b.run(net, input).output;
  // Different accumulation orders: tolerance, not bitwise.
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(ya, yb), 1e-4f);
}

TEST(SnicitEngine, DeterministicAcrossRuns) {
  auto [net, input] = make_test_net();
  SnicitEngine engine(default_params(8));
  const auto a = engine.run(net, input).output;
  const auto b = engine.run(net, input).output;
  EXPECT_FLOAT_EQ(dnn::DenseMatrix::max_abs_diff(a, b), 0.0f);
}

}  // namespace
}  // namespace snicit::core
