#include "platform/task_graph.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

namespace snicit::platform {
namespace {

TEST(TaskGraph, RunsAllNodes) {
  TaskGraph g;
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    g.add([&] { count.fetch_add(1); });
  }
  g.run();
  EXPECT_EQ(count.load(), 20);
}

TEST(TaskGraph, EmptyGraphRuns) {
  TaskGraph g;
  g.run();  // must not hang or crash
  SUCCEED();
}

TEST(TaskGraph, RespectsChainOrder) {
  TaskGraph g;
  std::vector<int> order;
  std::mutex m;
  TaskGraph::TaskId prev = 0;
  for (int i = 0; i < 10; ++i) {
    const auto id = g.add([&order, &m, i] {
      std::lock_guard<std::mutex> lock(m);
      order.push_back(i);
    });
    if (i > 0) g.add_edge(prev, id);
    prev = id;
  }
  g.run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(TaskGraph, DiamondDependency) {
  TaskGraph g;
  std::atomic<int> stage{0};
  const auto a = g.add([&] { EXPECT_EQ(stage.fetch_add(1), 0); });
  const auto b = g.add([&] { stage.fetch_add(1); });
  const auto c = g.add([&] { stage.fetch_add(1); });
  const auto d = g.add([&] { EXPECT_EQ(stage.load(), 3); });
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  g.run();
}

TEST(TaskGraph, IndependentChainsAllComplete) {
  // The SNIG-2020 shape: one chain per batch partition.
  TaskGraph g;
  constexpr int kChains = 8;
  constexpr int kDepth = 12;
  std::vector<std::atomic<int>> progress(kChains);
  for (int c = 0; c < kChains; ++c) {
    TaskGraph::TaskId prev = 0;
    for (int d = 0; d < kDepth; ++d) {
      const auto id = g.add([&progress, c, d] {
        // Each node must observe its predecessor's effect.
        EXPECT_EQ(progress[c].fetch_add(1), d);
      });
      if (d > 0) g.add_edge(prev, id);
      prev = id;
    }
  }
  g.run();
  for (auto& p : progress) {
    EXPECT_EQ(p.load(), kDepth);
  }
}

TEST(TaskGraphDeathTest, CycleAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        TaskGraph g;
        const auto a = g.add([] {});
        const auto b = g.add([] {});
        g.add_edge(a, b);
        g.add_edge(b, a);
        g.run();
      },
      "cycle");
}

}  // namespace
}  // namespace snicit::platform
