#include "baselines/serial.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "radixnet/radixnet.hpp"

namespace snicit::baselines {
namespace {

TEST(SerialBaseline, MatchesReferenceBitwise) {
  radixnet::RadixNetOptions opt;
  opt.neurons = 64;
  opt.layers = 8;
  opt.fanin = 8;
  const auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = 64;
  in_opt.batch = 12;
  const auto input = data::make_sdgc_input(in_opt).features;

  SerialEngine engine;
  const auto result = engine.run(net, input);
  const auto expected = dnn::reference_forward(net, input);
  // Same CSR-order accumulation as the reference: bitwise equal.
  EXPECT_FLOAT_EQ(dnn::DenseMatrix::max_abs_diff(result.output, expected),
                  0.0f);
  EXPECT_EQ(result.layer_ms.size(), 8u);
  EXPECT_EQ(result.stages.entries().size(), 1u);
}

TEST(SerialBaseline, HandlesVectorBias) {
  // A trained-style net with per-neuron biases must flow through the
  // naive loop unchanged.
  sparse::CooMatrix coo(3, 3);
  coo.add(0, 0, 1.0f);
  coo.add(1, 1, 2.0f);
  coo.add(2, 0, -1.0f);
  std::vector<sparse::CsrMatrix> w;
  w.push_back(sparse::CsrMatrix::from_coo(coo));
  std::vector<std::vector<float>> b = {{0.1f, 0.2f, 0.3f}};
  dnn::SparseDnn net(3, std::move(w), std::move(b), 1.0f, "vb");

  dnn::DenseMatrix x(3, 1);
  x.at(0, 0) = 0.5f;
  x.at(1, 0) = 0.25f;
  SerialEngine engine;
  const auto y = engine.run(net, x).output;
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.6f);   // 0.5 + 0.1
  EXPECT_FLOAT_EQ(y.at(1, 0), 0.7f);   // 0.5 + 0.2
  EXPECT_FLOAT_EQ(y.at(2, 0), 0.0f);   // -0.5 + 0.3 clipped
}

TEST(SerialBaseline, SlowerOrEqualToParallelEngines) {
  // Sanity property used by the Table 3 narrative: on non-trivial
  // workloads the naive serial loop is the slowest engine. (Timing
  // assertions are fragile; assert only non-negative + recorded.)
  radixnet::RadixNetOptions opt;
  opt.neurons = 128;
  opt.layers = 6;
  opt.fanin = 16;
  const auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = 128;
  in_opt.batch = 32;
  const auto input = data::make_sdgc_input(in_opt).features;
  SerialEngine engine;
  const auto result = engine.run(net, input);
  EXPECT_GT(result.total_ms(), 0.0);
}

}  // namespace
}  // namespace snicit::baselines
