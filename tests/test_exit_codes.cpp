// Regression lock on the CLI exit-code contract documented in README:
//   0 ok | 2 usage error | 3 lost batches / failed requests |
//   4 integrity failure | 5 drained on signal
// Deploy tooling branches on these codes (a rollout kill must read as a
// drain, not a crash; a sha256 mismatch must read as integrity, not a
// typo), so each code is pinned by actually running the binary.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#ifndef SNICIT_CLI_BIN
#error "SNICIT_CLI_BIN must point at the snicit_cli binary"
#endif

namespace {

int run_cli(const std::string& args) {
  const std::string command = std::string(SNICIT_CLI_BIN) + " " + args +
                              " > /dev/null 2> /dev/null";
  const int status = std::system(command.c_str());
  if (status == -1) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

const char kTinyNet[] = "--neurons 64 --layers 4 --batch 8";

TEST(ExitCodes, CleanRunExitsZero) {
  EXPECT_EQ(run_cli(std::string("run ") + kTinyNet + " --engine reference"),
            0);
}

TEST(ExitCodes, UsageErrorsExitTwo) {
  EXPECT_EQ(run_cli(""), 0);                      // bare invocation = help
  EXPECT_EQ(run_cli("frobnicate"), 2);            // unknown command
  EXPECT_EQ(run_cli(std::string("run ") + kTinyNet +
                    " --engine no-such-engine"),
            2);
  EXPECT_EQ(run_cli(std::string("run ") + kTinyNet +
                    " --engine reference --no-such-flag 1"),
            2);
  EXPECT_EQ(run_cli("verify-manifest"), 2);       // --models is required
}

TEST(ExitCodes, LostBatchesExitThree) {
  // worker_throw at p=1.0 with a single attempt fails every streamed
  // batch: work was lost, the exit code must say so. Four batches keep
  // the executor on the pooled-worker path where the site lives (one or
  // two batches fall back to the serial streamer).
  EXPECT_EQ(run_cli("run --neurons 64 --layers 4 --batch 16"
                    " --engine reference --stream 4 --workers 2"
                    " --faults worker_throw:1.0 --faults-seed 1"
                    " --max-attempts 1"),
            3);
}

TEST(ExitCodes, IntegrityFailuresExitFour) {
  // A journal that is not a journal: replay must refuse with the
  // integrity code, not a usage error and not a zero.
  const std::string bogus = ::testing::TempDir() + "snicit_bogus.journal";
  {
    std::ofstream out(bogus, std::ios::binary | std::ios::trunc);
    out << "this is not a journal";
  }
  EXPECT_EQ(run_cli(std::string("replay-journal ") + kTinyNet +
                    " --engine reference --journal " + bogus),
            4);
}

TEST(ExitCodes, SignalDrainExitsFive) {
  // --self-sigterm raises SIGTERM mid-submission: intake closes, accepted
  // requests drain, and the exit reports "drained on signal", not loss.
  EXPECT_EQ(run_cli(std::string("run ") + kTinyNet +
                    " --engine reference --serve-requests 4" +
                    " --self-sigterm 2"),
            5);
}

}  // namespace
