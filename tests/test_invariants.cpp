// Algorithm-level invariants the paper states or relies on, checked
// across the full post-convergence evolution of randomized workloads:
//
//   I1  M is fixed after conversion — never modified by updates (§3.2.2)
//   I2  centroid columns are always non-empty and always in ne_idx
//   I3  once a residue column is empty (without pruning) it stays empty
//   I4  Ŷ's centroid columns equal the exact feed-forward of the
//       original centroid columns at every layer (first case of Eq. (5))
//   I5  recovery at any intermediate layer approximates the exact
//       activations (the representation is losslessly maintained)
#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "platform/rng.hpp"
#include "radixnet/radixnet.hpp"
#include "snicit/convert.hpp"
#include "snicit/postconv.hpp"
#include "snicit/recovery.hpp"
#include "snicit/sample_prune.hpp"
#include "snicit/sampling.hpp"

namespace snicit::core {
namespace {

struct Evolution {
  dnn::SparseDnn net;
  dnn::DenseMatrix y_t;      // exact activations at conversion layer
  CompressedBatch initial;
  std::size_t t;
};

Evolution make_evolution(std::uint64_t seed) {
  platform::Rng rng(seed);
  radixnet::RadixNetOptions opt;
  opt.neurons = static_cast<sparse::Index>(64 + 32 * rng.next_below(3));
  opt.layers = 16;
  opt.fanin = 8;
  opt.seed = seed;
  auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = static_cast<std::size_t>(opt.neurons);
  in_opt.batch = 24 + rng.next_below(24);
  in_opt.seed = seed + 5;
  const auto input = data::make_sdgc_input(in_opt).features;
  const std::size_t t = 4 + rng.next_below(6);
  auto y_t = dnn::reference_forward(net, input, 0, t);
  const auto f = build_sample_matrix(y_t, 16, 0);
  auto batch =
      convert_to_compressed(y_t, prune_samples(f, 0.03f, 0.03f), 0.0f);
  return {std::move(net), std::move(y_t), std::move(batch), t};
}

class InvariantSweep : public ::testing::TestWithParam<int> {};

TEST_P(InvariantSweep, HoldThroughPostConvergence) {
  auto ev = make_evolution(static_cast<std::uint64_t>(GetParam()) * 31);
  auto batch = ev.initial;
  const auto mapper_snapshot = batch.mapper;
  const auto centroid_snapshot = batch.centroids;

  // Exact per-layer evolution of the original centroid columns (I4).
  dnn::DenseMatrix cent_exact(ev.y_t.rows(), batch.centroids.size());
  for (std::size_t k = 0; k < batch.centroids.size(); ++k) {
    std::copy_n(ev.y_t.col(static_cast<std::size_t>(batch.centroids[k])),
                ev.y_t.rows(), cent_exact.col(k));
  }

  dnn::DenseMatrix exact = ev.y_t;  // full exact trajectory (I5)
  dnn::DenseMatrix scratch(ev.y_t.rows(), ev.y_t.cols());
  std::vector<std::uint8_t> was_empty(batch.batch(), 0);

  for (std::size_t l = ev.t; l < ev.net.num_layers(); ++l) {
    for (std::size_t j = 0; j < batch.batch(); ++j) {
      if (!batch.is_centroid(j) && batch.ne_rec[j] == 0) was_empty[j] = 1;
    }

    post_convergence_layer(ev.net.weight(l), ev.net.bias(l), ev.net.ymax(),
                           0.0f, batch, scratch);
    batch.refresh_ne_idx();
    exact = dnn::reference_forward(ev.net, exact, l, l + 1);
    cent_exact = dnn::reference_forward(ev.net, cent_exact, l, l + 1);

    // I1: M and y* unchanged.
    ASSERT_EQ(batch.mapper, mapper_snapshot);
    ASSERT_EQ(batch.centroids, centroid_snapshot);

    // I2: centroids non-empty and listed.
    for (sparse::Index cent : batch.centroids) {
      EXPECT_EQ(batch.ne_rec[static_cast<std::size_t>(cent)], 1);
      EXPECT_TRUE(std::find(batch.ne_idx.begin(), batch.ne_idx.end(),
                            cent) != batch.ne_idx.end());
    }

    // I3: emptiness is absorbing (no pruning involved).
    for (std::size_t j = 0; j < batch.batch(); ++j) {
      if (was_empty[j] != 0) {
        EXPECT_EQ(batch.ne_rec[j], 0) << "column " << j << " revived";
        EXPECT_EQ(batch.yhat.column_nonzeros(j), 0u);
      }
    }

    // I4: centroid columns track exact feed-forward bitwise (gather
    // kernel on both sides, same accumulation order).
    for (std::size_t k = 0; k < batch.centroids.size(); ++k) {
      const auto cent = static_cast<std::size_t>(batch.centroids[k]);
      for (std::size_t r = 0; r < ev.y_t.rows(); ++r) {
        ASSERT_FLOAT_EQ(batch.yhat.at(r, cent), cent_exact.at(r, k))
            << "layer " << l;
      }
    }

    // I5: recovery approximates the exact activations at every layer.
    const auto recovered = recover_results(batch);
    EXPECT_LE(dnn::DenseMatrix::max_abs_diff(recovered, exact), 2e-3f)
        << "layer " << l;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace snicit::core
