#include "radixnet/mixed_radix.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <stdexcept>

#include "dnn/reference.hpp"

namespace snicit::radixnet {
namespace {

TEST(MixedRadixNeurons, ProductOfRadices) {
  EXPECT_EQ(mixed_radix_neurons({32, 32}), 1024);
  EXPECT_EQ(mixed_radix_neurons({32, 32, 4}), 4096);
  EXPECT_EQ(mixed_radix_neurons({2, 3, 5}), 30);
}

TEST(DefaultRadices, PrefersLargeFactors) {
  EXPECT_EQ(default_radices(1024), (std::vector<int>{32, 32}));
  EXPECT_EQ(default_radices(4096), (std::vector<int>{32, 32, 4}));
  EXPECT_EQ(default_radices(30, 8), (std::vector<int>{6, 5}));
}

TEST(DefaultRadices, ProductAlwaysMatches) {
  for (Index n : {64, 120, 256, 1000, 4096}) {
    const auto radices = default_radices(n);
    EXPECT_EQ(mixed_radix_neurons(radices), n) << n;
  }
}

TEST(DefaultRadices, LargePrimeFactorThrows) {
  EXPECT_THROW(default_radices(37 * 4, 32), std::invalid_argument);
  EXPECT_THROW(default_radices(1, 32), std::invalid_argument);
}

TEST(MixedRadixNet, LayerFaninEqualsLayerRadix) {
  MixedRadixOptions opt;
  opt.radices = {8, 4};
  opt.layers = 4;
  const auto net = make_mixed_radix_net(opt);
  EXPECT_EQ(net.neurons(), 32);
  // Layers alternate radix 8, 4, 8, 4.
  const int expected[] = {8, 4, 8, 4};
  for (std::size_t l = 0; l < 4; ++l) {
    for (Index r = 0; r < 32; ++r) {
      ASSERT_EQ(net.weight(l).row_cols(r).size(),
                static_cast<std::size_t>(expected[l]))
          << "layer " << l;
    }
  }
}

TEST(MixedRadixNet, ButterflyStructure) {
  // Digit-0 stage (stride 1): neuron j connects to the radix-r block
  // around it; every target shares all digits except digit 0.
  MixedRadixOptions opt;
  opt.radices = {4, 8};
  opt.layers = 2;
  const auto net = make_mixed_radix_net(opt);
  for (Index j = 0; j < 32; ++j) {
    const auto cols = net.weight(0).row_cols(j);
    const Index base = j - (j % 4);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      EXPECT_EQ(cols[k], base + static_cast<Index>(k));
    }
  }
  // Digit-1 stage (stride 4): targets differ only in the second digit.
  for (Index j = 0; j < 32; ++j) {
    const auto cols = net.weight(1).row_cols(j);
    ASSERT_EQ(cols.size(), 8u);
    for (Index c : cols) {
      EXPECT_EQ(c % 4, j % 4);  // digit 0 preserved
    }
  }
}

TEST(MixedRadixNet, FullMixingAfterOneRadixCycle) {
  // After D = #radices layers, a single active input must be able to
  // reach every neuron (the butterfly's defining property). Verify via
  // reachability on absolute connectivity.
  MixedRadixOptions opt;
  opt.radices = {4, 4, 4};  // N = 64, D = 3
  opt.layers = 3;
  opt.bias = 0.0f;
  const auto net = make_mixed_radix_net(opt);

  std::set<Index> reachable = {13};  // arbitrary start neuron
  for (std::size_t l = 0; l < 3; ++l) {
    std::set<Index> next;
    for (Index r = 0; r < 64; ++r) {
      for (Index c : net.weight(l).row_cols(r)) {
        if (reachable.count(c) != 0u) {
          next.insert(r);
          break;
        }
      }
    }
    reachable = std::move(next);
  }
  EXPECT_EQ(reachable.size(), 64u);
}

TEST(MixedRadixNet, RunsThroughReferenceEngine) {
  MixedRadixOptions opt;
  opt.radices = {8, 8};
  opt.layers = 6;
  opt.bias = -0.2f;
  const auto net = make_mixed_radix_net(opt);
  dnn::DenseMatrix input(64, 5, 0.5f);
  const auto y = dnn::reference_forward(net, input);
  EXPECT_EQ(y.rows(), 64u);
  for (std::size_t i = 0; i < y.rows() * y.cols(); ++i) {
    EXPECT_GE(y.data()[i], 0.0f);
    EXPECT_LE(y.data()[i], net.ymax());
  }
}

TEST(MixedRadixNet, DeterministicPerSeed) {
  MixedRadixOptions opt;
  opt.radices = {4, 4};
  opt.layers = 3;
  const auto a = make_mixed_radix_net(opt);
  const auto b = make_mixed_radix_net(opt);
  for (std::size_t l = 0; l < 3; ++l) {
    EXPECT_EQ(a.weight(l).values(), b.weight(l).values());
  }
}

}  // namespace
}  // namespace snicit::radixnet
