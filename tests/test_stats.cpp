#include "platform/stats.hpp"

#include <gtest/gtest.h>

#include "platform/rng.hpp"

namespace snicit::platform {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MatchesTwoPassOnRandomData) {
  Rng rng(9);
  std::vector<double> xs(5000);
  RunningStats s;
  double sum = 0.0;
  for (auto& x : xs) {
    x = rng.next_gaussian() * 3.0 + 1.0;
    s.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(-5.0);  // clamps to bin 0
  h.add(25.0);  // clamps to bin 9
  h.add(10.0);  // upper edge clamps into last bin
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 3u);
  for (std::size_t b = 1; b < 9; ++b) {
    EXPECT_EQ(h.count(b), 0u);
  }
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Histogram, QuantilesOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(4);
  for (int i = 0; i < 100000; ++i) h.add(rng.next_double());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, QuantileEdgeCases) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty: lower bound
  h.add(0.6);
  EXPECT_NEAR(h.quantile(1.0), 0.75, 1e-9);  // within the containing bin
}

TEST(QuantileTracker, EmptyYieldsZero) {
  QuantileTracker t;
  EXPECT_EQ(t.count(), 0u);
  EXPECT_DOUBLE_EQ(t.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(t.p99(), 0.0);
}

TEST(QuantileTracker, SingleSampleIsEveryQuantile) {
  QuantileTracker t;
  t.add(3.25);
  for (double q : {0.0, 0.1, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(t.quantile(q), 3.25);
  }
}

TEST(QuantileTracker, ExactSmallSampleQuantiles) {
  QuantileTracker t;
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) t.add(v);  // unsorted on purpose
  EXPECT_DOUBLE_EQ(t.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(t.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(t.median(), 3.0);
  EXPECT_DOUBLE_EQ(t.quantile(0.75), 4.0);
  EXPECT_DOUBLE_EQ(t.quantile(1.0), 5.0);
  // Interior points interpolate linearly between order statistics.
  EXPECT_NEAR(t.quantile(0.1), 1.4, 1e-12);
  EXPECT_NEAR(t.quantile(0.9), 4.6, 1e-12);
}

TEST(QuantileTracker, ClampsOutOfRangeQ) {
  QuantileTracker t;
  t.add(10.0);
  t.add(20.0);
  EXPECT_DOUBLE_EQ(t.quantile(-3.0), 10.0);  // clamps to min
  EXPECT_DOUBLE_EQ(t.quantile(7.0), 20.0);   // clamps to max
}

TEST(QuantileTracker, MonotoneInQ) {
  QuantileTracker t;
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) t.add(rng.next_gaussian() * 5.0);
  double prev = t.quantile(0.0);
  for (double q = 0.01; q <= 1.0; q += 0.01) {
    const double v = t.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(QuantileTracker, InterleavedAddAndQuery) {
  // Queries sort lazily; later adds must invalidate the cached order.
  QuantileTracker t;
  t.add(2.0);
  t.add(4.0);
  EXPECT_DOUBLE_EQ(t.median(), 3.0);
  t.add(0.0);  // new minimum after a query
  EXPECT_DOUBLE_EQ(t.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(t.median(), 2.0);
}

TEST(QuantileTracker, PercentilesOfKnownSequence) {
  QuantileTracker t;
  for (int i = 1; i <= 100; ++i) t.add(static_cast<double>(i));
  EXPECT_NEAR(t.p50(), 50.5, 1e-12);
  EXPECT_NEAR(t.p95(), 95.05, 1e-12);
  EXPECT_NEAR(t.p99(), 99.01, 1e-12);
}

}  // namespace
}  // namespace snicit::platform
