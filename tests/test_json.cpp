#include "platform/json.hpp"

#include <gtest/gtest.h>

namespace snicit::platform {
namespace {

TEST(Json, EmptyObject) {
  JsonWriter w;
  w.begin_object().end_object();
  EXPECT_EQ(w.str(), "{}");
}

TEST(Json, EmptyArray) {
  JsonWriter w;
  w.begin_array().end_array();
  EXPECT_EQ(w.str(), "[]");
}

TEST(Json, ScalarTypes) {
  JsonWriter w;
  w.begin_object()
      .key("s").value("hi")
      .key("i").value(std::int64_t{-42})
      .key("d").value(2.5)
      .key("b").value(true)
      .key("n").value(std::size_t{7})
      .end_object();
  EXPECT_EQ(w.str(),
            "{\"s\":\"hi\",\"i\":-42,\"d\":2.5,\"b\":true,\"n\":7}");
}

TEST(Json, NestedContainers) {
  JsonWriter w;
  w.begin_object()
      .key("rows").begin_array()
          .begin_object().key("x").value(std::int64_t{1}).end_object()
          .begin_object().key("x").value(std::int64_t{2}).end_object()
      .end_array()
      .end_object();
  EXPECT_EQ(w.str(), "{\"rows\":[{\"x\":1},{\"x\":2}]}");
}

TEST(Json, ArrayCommaPlacement) {
  JsonWriter w;
  w.begin_array().value(1.0).value(2.0).value(3.0).end_array();
  EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonWriter::escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  JsonWriter w;
  w.begin_array()
      .value(std::numeric_limits<double>::infinity())
      .value(std::numeric_limits<double>::quiet_NaN())
      .end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonDeathTest, ValueWithoutKeyInObjectAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.begin_object().value(1.0);
      },
      "key");
}

TEST(JsonDeathTest, MismatchedCloseAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.begin_object().end_array();
      },
      "end_array");
}

TEST(JsonDeathTest, StrWithOpenContainerAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.begin_object();
        (void)w.str();
      },
      "unclosed");
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("-42").as_number(), -42.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("2.5e2").as_number(), 250.0);
  EXPECT_EQ(JsonValue::parse("\"hi\\n\\\"there\\\"\"").as_string(),
            "hi\n\"there\"");
}

TEST(JsonParse, Containers) {
  const auto doc =
      JsonValue::parse(R"({"rows":[{"x":1},{"x":2}],"ok":true})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.has("rows"));
  EXPECT_FALSE(doc.has("absent"));
  EXPECT_EQ(doc.keys(), (std::vector<std::string>{"rows", "ok"}));
  const auto& rows = doc.get("rows");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows.at(0).get("x").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(rows.at(1).get("x").as_number(), 2.0);
  EXPECT_TRUE(doc.get("ok").as_bool());
}

TEST(JsonParse, RoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object()
      .key("name").value("a \"quoted\"\tname")
      .key("vals").begin_array().value(1.5).value(std::int64_t{-3})
      .end_array()
      .end_object();
  const auto doc = JsonValue::parse(w.str());
  EXPECT_EQ(doc.get("name").as_string(), "a \"quoted\"\tname");
  EXPECT_DOUBLE_EQ(doc.get("vals").at(0).as_number(), 1.5);
  EXPECT_DOUBLE_EQ(doc.get("vals").at(1).as_number(), -3.0);
}

TEST(JsonParse, MalformedInputThrowsWithPosition) {
  EXPECT_THROW(JsonValue::parse(""), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("{"), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("{\"a\":1,}"), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("{} extra"), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("{\"a\":1,\"a\":2}"), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("nul"), std::invalid_argument);
  try {
    JsonValue::parse("[1, x]");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

}  // namespace
}  // namespace snicit::platform
