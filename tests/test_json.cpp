#include "platform/json.hpp"

#include <gtest/gtest.h>

namespace snicit::platform {
namespace {

TEST(Json, EmptyObject) {
  JsonWriter w;
  w.begin_object().end_object();
  EXPECT_EQ(w.str(), "{}");
}

TEST(Json, EmptyArray) {
  JsonWriter w;
  w.begin_array().end_array();
  EXPECT_EQ(w.str(), "[]");
}

TEST(Json, ScalarTypes) {
  JsonWriter w;
  w.begin_object()
      .key("s").value("hi")
      .key("i").value(std::int64_t{-42})
      .key("d").value(2.5)
      .key("b").value(true)
      .key("n").value(std::size_t{7})
      .end_object();
  EXPECT_EQ(w.str(),
            "{\"s\":\"hi\",\"i\":-42,\"d\":2.5,\"b\":true,\"n\":7}");
}

TEST(Json, NestedContainers) {
  JsonWriter w;
  w.begin_object()
      .key("rows").begin_array()
          .begin_object().key("x").value(std::int64_t{1}).end_object()
          .begin_object().key("x").value(std::int64_t{2}).end_object()
      .end_array()
      .end_object();
  EXPECT_EQ(w.str(), "{\"rows\":[{\"x\":1},{\"x\":2}]}");
}

TEST(Json, ArrayCommaPlacement) {
  JsonWriter w;
  w.begin_array().value(1.0).value(2.0).value(3.0).end_array();
  EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonWriter::escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  JsonWriter w;
  w.begin_array()
      .value(std::numeric_limits<double>::infinity())
      .value(std::numeric_limits<double>::quiet_NaN())
      .end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonDeathTest, ValueWithoutKeyInObjectAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.begin_object().value(1.0);
      },
      "key");
}

TEST(JsonDeathTest, MismatchedCloseAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.begin_object().end_array();
      },
      "end_array");
}

TEST(JsonDeathTest, StrWithOpenContainerAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.begin_object();
        (void)w.str();
      },
      "unclosed");
}

}  // namespace
}  // namespace snicit::platform
