#include <gtest/gtest.h>

#include "platform/rng.hpp"
#include "sparse/coo.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"

namespace snicit::sparse {
namespace {

CooMatrix small_example() {
  // 3x4:
  //   [ 1 0 2 0 ]
  //   [ 0 0 0 3 ]
  //   [ 4 5 0 0 ]
  CooMatrix coo(3, 4);
  coo.add(0, 0, 1.0f);
  coo.add(0, 2, 2.0f);
  coo.add(1, 3, 3.0f);
  coo.add(2, 0, 4.0f);
  coo.add(2, 1, 5.0f);
  return coo;
}

TEST(Coo, CoalesceSortsAndMergesDuplicates) {
  CooMatrix coo(2, 2);
  coo.add(1, 1, 1.0f);
  coo.add(0, 0, 2.0f);
  coo.add(1, 1, 3.0f);
  coo.coalesce();
  ASSERT_EQ(coo.nnz(), 2);
  EXPECT_EQ(coo.entries()[0].row, 0);
  EXPECT_FLOAT_EQ(coo.entries()[0].value, 2.0f);
  EXPECT_EQ(coo.entries()[1].row, 1);
  EXPECT_FLOAT_EQ(coo.entries()[1].value, 4.0f);
}

TEST(Csr, FromCooMatchesDenseLayout) {
  const auto csr = CsrMatrix::from_coo(small_example());
  EXPECT_EQ(csr.rows(), 3);
  EXPECT_EQ(csr.cols(), 4);
  EXPECT_EQ(csr.nnz(), 5);
  EXPECT_TRUE(csr.is_valid());

  ASSERT_EQ(csr.row_cols(0).size(), 2u);
  EXPECT_EQ(csr.row_cols(0)[0], 0);
  EXPECT_EQ(csr.row_cols(0)[1], 2);
  EXPECT_FLOAT_EQ(csr.row_vals(0)[1], 2.0f);
  ASSERT_EQ(csr.row_cols(1).size(), 1u);
  EXPECT_EQ(csr.row_cols(1)[0], 3);
  ASSERT_EQ(csr.row_cols(2).size(), 2u);
  EXPECT_FLOAT_EQ(csr.row_vals(2)[0], 4.0f);
}

TEST(Csr, EmptyMatrix) {
  CooMatrix coo(3, 3);
  const auto csr = CsrMatrix::from_coo(coo);
  EXPECT_EQ(csr.nnz(), 0);
  EXPECT_TRUE(csr.is_valid());
  EXPECT_EQ(csr.row_cols(1).size(), 0u);
}

TEST(Csr, DensityComputation) {
  const auto csr = CsrMatrix::from_coo(small_example());
  EXPECT_DOUBLE_EQ(csr.density(), 5.0 / 12.0);
}

TEST(Csr, TransposeRoundTrip) {
  const auto csr = CsrMatrix::from_coo(small_example());
  const auto t = transpose(csr);
  EXPECT_EQ(t.rows(), 4);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.nnz(), 5);
  EXPECT_TRUE(t.is_valid());
  const auto tt = transpose(t);
  ASSERT_EQ(tt.nnz(), csr.nnz());
  EXPECT_EQ(tt.row_ptr(), csr.row_ptr());
  EXPECT_EQ(tt.col_idx(), csr.col_idx());
  EXPECT_EQ(tt.values(), csr.values());
}

TEST(Csc, FromCsrMatchesEntries) {
  const auto csr = CsrMatrix::from_coo(small_example());
  const auto csc = CscMatrix::from_csr(csr);
  EXPECT_EQ(csc.rows(), 3);
  EXPECT_EQ(csc.cols(), 4);
  EXPECT_EQ(csc.nnz(), 5);
  EXPECT_TRUE(csc.is_valid());

  ASSERT_EQ(csc.col_rows(0).size(), 2u);  // column 0 holds rows 0 and 2
  EXPECT_EQ(csc.col_rows(0)[0], 0);
  EXPECT_EQ(csc.col_rows(0)[1], 2);
  EXPECT_FLOAT_EQ(csc.col_vals(0)[1], 4.0f);
  EXPECT_EQ(csc.col_rows(2).size(), 1u);
  EXPECT_FLOAT_EQ(csc.col_vals(2)[0], 2.0f);
}

TEST(Csc, FromCooEqualsFromCsr) {
  const auto coo = small_example();
  const auto a = CscMatrix::from_coo(coo);
  const auto b = CscMatrix::from_csr(CsrMatrix::from_coo(coo));
  EXPECT_EQ(a.col_ptr(), b.col_ptr());
  EXPECT_EQ(a.row_idx(), b.row_idx());
  EXPECT_EQ(a.values(), b.values());
}

// Property sweep: CSR <-> CSC round trips preserve every entry on random
// matrices of assorted shapes and densities.
class FormatRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(FormatRoundTrip, CsrToCscPreservesDenseReconstruction) {
  const auto [rows, cols, density] = GetParam();
  platform::Rng rng(rows * 1000 + cols);
  CooMatrix coo(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (rng.next_bool(density)) {
        coo.add(r, c, rng.uniform(-1.0f, 1.0f));
      }
    }
  }
  const auto csr = CsrMatrix::from_coo(coo);
  const auto csc = CscMatrix::from_csr(csr);
  ASSERT_TRUE(csr.is_valid());
  ASSERT_TRUE(csc.is_valid());
  ASSERT_EQ(csr.nnz(), csc.nnz());

  // Reconstruct dense from both and compare.
  std::vector<float> dense_csr(static_cast<std::size_t>(rows) * cols, 0.0f);
  for (Index r = 0; r < rows; ++r) {
    const auto cs = csr.row_cols(r);
    const auto vs = csr.row_vals(r);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      dense_csr[static_cast<std::size_t>(r) * cols + cs[k]] = vs[k];
    }
  }
  std::vector<float> dense_csc(static_cast<std::size_t>(rows) * cols, 0.0f);
  for (Index c = 0; c < cols; ++c) {
    const auto rs = csc.col_rows(c);
    const auto vs = csc.col_vals(c);
    for (std::size_t k = 0; k < rs.size(); ++k) {
      dense_csc[static_cast<std::size_t>(rs[k]) * cols + c] = vs[k];
    }
  }
  EXPECT_EQ(dense_csr, dense_csc);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FormatRoundTrip,
    ::testing::Values(std::make_tuple(1, 1, 1.0), std::make_tuple(16, 16, 0.1),
                      std::make_tuple(64, 8, 0.3), std::make_tuple(8, 64, 0.3),
                      std::make_tuple(50, 50, 0.02),
                      std::make_tuple(33, 17, 0.5)));

}  // namespace
}  // namespace snicit::sparse
