# Re-applies multi-label sets to gtest-discovered tests at ctest time.
#
# gtest_discover_tests' POST_BUILD discovery flattens list-valued
# properties, so a suite registered with more than one ctest label keeps
# only the first (e.g. the serving suites carry "tier1;serve", the fault
# drills "tier1;fault").  snicit_add_test appends a tiny shim (which sets
# SNICIT_LABEL_SOURCE and SNICIT_LABELS, then includes this file) to the
# directory's TEST_INCLUDE_FILES *after* the discovery include, so this
# runs once the generated add_test() calls exist and can restore the
# full label set on every discovered test.
if(NOT EXISTS "${SNICIT_LABEL_SOURCE}")
  return()
endif()
file(STRINGS "${SNICIT_LABEL_SOURCE}" _snicit_label_lines REGEX "^add_test")
foreach(_snicit_label_line IN LISTS _snicit_label_lines)
  if(_snicit_label_line MATCHES "^add_test\\( *\\[=*\\[([^]]+)\\]")
    set_tests_properties("${CMAKE_MATCH_1}" PROPERTIES
                         LABELS "${SNICIT_LABELS}")
  endif()
endforeach()
