// End-to-end observability: runs the SNICIT engine with tracing + metrics
// enabled on a small Radix-Net and checks that the recorded workload
// counters obey the paper's invariants — active columns never increase
// after the threshold layer (empty residues stay empty under Eq. 5), a
// prune threshold of 0 prunes nothing, and the per-layer series agree
// with the engine's own ne-bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "platform/metrics.hpp"
#include "platform/trace.hpp"
#include "radixnet/radixnet.hpp"
#include "snicit/engine.hpp"

namespace snicit::core {
namespace {

constexpr int kLayers = 12;
constexpr int kThreshold = 6;
constexpr sparse::Index kNeurons = 256;
constexpr std::size_t kBatch = 64;

struct TestNet {
  dnn::SparseDnn net;
  dnn::DenseMatrix input;
};

TestNet make_test_net() {
  radixnet::RadixNetOptions opt;
  opt.neurons = kNeurons;
  opt.layers = kLayers;
  opt.fanin = 16;
  opt.seed = 7;
  auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = static_cast<std::size_t>(kNeurons);
  in_opt.batch = kBatch;
  in_opt.classes = 8;
  in_opt.seed = 31;
  auto input = data::make_sdgc_input(in_opt).features;
  return {std::move(net), std::move(input)};
}

SnicitParams observed_params() {
  SnicitParams p;
  p.threshold_layer = kThreshold;
  p.sample_size = 16;
  p.downsample_dim = 0;  // exact column comparison at this scale
  p.prune_threshold = 0.0f;
  p.ne_refresh_interval = 1;  // ne_idx tracks ne_rec exactly (cross-check)
  p.record_trace = true;
  return p;
}

// Both stores are process-global: start each test from a clean, enabled
// capture and switch everything back off afterwards.
class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    platform::trace::set_enabled(false);
    platform::trace::clear();
    platform::trace::set_enabled(true);
    platform::metrics::MetricsRegistry::global().reset();
    platform::metrics::set_enabled(true);
  }
  void TearDown() override {
    platform::trace::set_enabled(false);
    platform::trace::clear();
    platform::metrics::set_enabled(false);
    platform::metrics::MetricsRegistry::global().reset();
  }
};

TEST_F(ObservabilityTest, InstrumentedRunStillMatchesReference) {
  auto [net, input] = make_test_net();
  SnicitEngine engine(observed_params());
  const auto result = engine.run(net, input);
  const auto expected = dnn::reference_forward(net, input);
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, expected), 5e-3f);
  EXPECT_DOUBLE_EQ(
      dnn::category_match_rate(dnn::sdgc_categories(result.output, 1e-3f),
                               dnn::sdgc_categories(expected, 1e-3f)),
      1.0);
}

TEST_F(ObservabilityTest, ActiveColumnsNonIncreasingAfterThreshold) {
  auto [net, input] = make_test_net();
  SnicitEngine engine(observed_params());
  engine.run(net, input);

  const auto series =
      platform::metrics::MetricsRegistry::global().series_values();
  const auto& active = series.at("snicit.active_columns");
  ASSERT_EQ(active.size(), static_cast<std::size_t>(kLayers));

  // Pre-convergence carries the whole batch dense.
  for (int i = 0; i < kThreshold; ++i) {
    EXPECT_DOUBLE_EQ(active[static_cast<std::size_t>(i)],
                     static_cast<double>(kBatch))
        << "pre-convergence layer " << i;
  }
  // Post-convergence: columns only ever empty out (Eq. 5 keeps empties
  // empty), so the count is batch-bounded and non-increasing.
  EXPECT_LE(active[kThreshold], static_cast<double>(kBatch));
  for (int i = kThreshold + 1; i < kLayers; ++i) {
    EXPECT_LE(active[static_cast<std::size_t>(i)],
              active[static_cast<std::size_t>(i - 1)])
        << "post-convergence layer " << i;
  }
}

TEST_F(ObservabilityTest, ActiveColumnsAgreeWithEngineBookkeeping) {
  auto [net, input] = make_test_net();
  SnicitEngine engine(observed_params());
  engine.run(net, input);

  // With ne_refresh_interval = 1 the engine trace's ne_idx sizes are
  // rebuilt from ne_rec every layer, so the two bookkeeping paths must
  // report identical per-layer counts.
  const auto& trace = engine.last_trace();
  const auto series =
      platform::metrics::MetricsRegistry::global().series_values();
  const auto& active = series.at("snicit.active_columns");
  ASSERT_EQ(trace.ne_count.size(),
            static_cast<std::size_t>(kLayers - kThreshold));
  for (std::size_t k = 0; k < trace.ne_count.size(); ++k) {
    EXPECT_DOUBLE_EQ(active[static_cast<std::size_t>(kThreshold) + k],
                     static_cast<double>(trace.ne_count[k]))
        << "post-convergence layer " << kThreshold + k;
  }
  const auto& nnz = series.at("snicit.compressed_nnz");
  ASSERT_EQ(nnz.size(), static_cast<std::size_t>(kLayers));
  for (std::size_t k = 0; k < trace.compressed_nnz.size(); ++k) {
    EXPECT_DOUBLE_EQ(nnz[static_cast<std::size_t>(kThreshold) + k],
                     static_cast<double>(trace.compressed_nnz[k]));
  }
}

TEST_F(ObservabilityTest, ZeroPruneThresholdPrunesNothing) {
  auto [net, input] = make_test_net();
  SnicitEngine engine(observed_params());
  engine.run(net, input);

  auto& registry = platform::metrics::MetricsRegistry::global();
  const auto series = registry.series_values();
  const auto& pruned = series.at("snicit.pruned_residues");
  ASSERT_EQ(pruned.size(), static_cast<std::size_t>(kLayers));
  for (double v : pruned) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_EQ(registry.counter_values().at("snicit.pruned_residues_total"), 0);
  EXPECT_EQ(registry.counter_values().at("snicit.conversion_pruned"), 0);
}

TEST_F(ObservabilityTest, GaugesReportConversionState) {
  auto [net, input] = make_test_net();
  SnicitEngine engine(observed_params());
  engine.run(net, input);

  const auto gauges =
      platform::metrics::MetricsRegistry::global().gauge_values();
  EXPECT_DOUBLE_EQ(gauges.at("snicit.threshold_layer"),
                   static_cast<double>(kThreshold));
  EXPECT_DOUBLE_EQ(gauges.at("snicit.centroids"),
                   static_cast<double>(engine.last_trace().centroid_count));
  EXPECT_GE(gauges.at("snicit.centroids"), 1.0);
}

TEST_F(ObservabilityTest, TraceCapturesTheFourStages) {
  auto [net, input] = make_test_net();
  SnicitEngine engine(observed_params());
  engine.run(net, input);

  std::vector<std::string> names;
  double run_ts = -1.0, run_end = -1.0;
  for (const auto& e : platform::trace::snapshot()) {
    names.emplace_back(e.name);
    if (names.back() == "snicit.run") {
      run_ts = e.ts_us;
      run_end = e.ts_us + e.dur_us;
    }
  }
  const auto has = [&](const char* name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  EXPECT_TRUE(has("snicit.run"));
  EXPECT_TRUE(has("pre-convergence"));
  EXPECT_TRUE(has("conversion"));
  EXPECT_TRUE(has("post-convergence"));
  EXPECT_TRUE(has("recovery"));
  EXPECT_TRUE(has("pre_layer"));
  EXPECT_TRUE(has("postconv_layer"));

  // Every stage span nests inside the run span.
  ASSERT_GE(run_ts, 0.0);
  for (const auto& e : platform::trace::snapshot()) {
    const std::string name = e.name;
    if (name == "pre-convergence" || name == "conversion" ||
        name == "post-convergence" || name == "recovery") {
      EXPECT_GE(e.ts_us, run_ts) << name;
      EXPECT_LE(e.ts_us + e.dur_us, run_end) << name;
    }
  }
}

TEST_F(ObservabilityTest, DisabledMetricsRecordNothing) {
  platform::metrics::set_enabled(false);
  platform::trace::set_enabled(false);
  auto [net, input] = make_test_net();
  SnicitEngine engine(observed_params());
  engine.run(net, input);

  auto& registry = platform::metrics::MetricsRegistry::global();
  for (const auto& [name, values] : registry.series_values()) {
    EXPECT_TRUE(values.empty()) << name;
  }
  for (const auto& [name, value] : registry.counter_values()) {
    EXPECT_EQ(value, 0) << name;
  }
  EXPECT_EQ(platform::trace::event_count(), 0u);
}

}  // namespace
}  // namespace snicit::core
