// Fault-injection suite: determinism and parsing of the FaultRegistry,
// and fault drills through the resilient serving pipeline — a
// worker_throw drill must lose zero batches and stay bit-identical to
// the fault-free run, a producer queue_stall must be output-invisible,
// and an attempts-exhausting drill must land in StreamResult::failures
// without aborting the stream. All drills run under a fixed seed, so
// every assertion is deterministic.
#include "platform/fault_injection.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "platform/error.hpp"
#include "radixnet/radixnet.hpp"
#include "snicit/engine.hpp"
#include "snicit/parallel_stream.hpp"

namespace snicit::platform::fault {
namespace {

/// Every test disarms the process-wide registry on the way out so suites
/// sharing the binary never see stale fault configs.
class FaultRegistryTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::global().clear(); }
};

TEST_F(FaultRegistryTest, DisarmedByDefaultAndAfterClear) {
  auto& reg = FaultRegistry::global();
  reg.clear();
  EXPECT_FALSE(reg.armed());
  EXPECT_FALSE(should_fire("worker_throw", 0));
  ASSERT_TRUE(reg.configure("worker_throw:1.0", 1).ok());
  EXPECT_TRUE(reg.armed());
  reg.clear();
  EXPECT_FALSE(reg.armed());
  EXPECT_EQ(reg.spec(), "");
}

TEST_F(FaultRegistryTest, MalformedSpecsAreTypedErrorsAndLeaveStateAlone) {
  auto& reg = FaultRegistry::global();
  ASSERT_TRUE(reg.configure("worker_throw:0.25", 7).ok());
  const std::string before = reg.spec();

  const std::vector<std::string> bad = {
      "no_such_site:0.5",        // unknown site: a typo must not arm nothing
      "worker_throw",            // missing probability
      "worker_throw:nope",       // unparseable probability
      "worker_throw:1.5",        // probability outside [0, 1]
      "worker_throw:-0.1",
      "worker_throw:0.1,worker_throw:0.2",  // duplicate site
      "worker_throw:0.1:xyz",    // unparseable param
  };
  for (const auto& spec : bad) {
    const auto result = reg.configure(spec, 7);
    ASSERT_FALSE(result.ok()) << spec;
    EXPECT_EQ(result.code(), ErrorCode::kBadInput) << spec;
    EXPECT_EQ(reg.spec(), before) << spec;  // registry unchanged
  }
}

TEST_F(FaultRegistryTest, SpecRoundTripsAndParamIsExposed) {
  auto& reg = FaultRegistry::global();
  ASSERT_TRUE(reg.configure("queue_stall:0.5:12.5,worker_throw:0.25", 3).ok());
  EXPECT_DOUBLE_EQ(reg.param("queue_stall", 5.0), 12.5);
  EXPECT_DOUBLE_EQ(reg.param("worker_throw", 5.0), 5.0);  // unset: fallback
  const std::string spec = reg.spec();
  EXPECT_NE(spec.find("queue_stall:0.5:12.5"), std::string::npos);
  EXPECT_NE(spec.find("worker_throw:0.25"), std::string::npos);
}

TEST_F(FaultRegistryTest, KeyedTrialsAreAPureFunctionOfSeedSiteKey) {
  auto& reg = FaultRegistry::global();
  ASSERT_TRUE(reg.configure("worker_throw:0.2", 42).ok());
  std::vector<bool> first;
  for (std::uint64_t k = 0; k < 512; ++k) {
    first.push_back(reg.should_fire("worker_throw", k));
  }
  // Re-arming with the same seed reproduces the exact decision sequence,
  // regardless of everything that fired in between.
  ASSERT_TRUE(reg.configure("worker_throw:0.2,nan_tile:0.5", 42).ok());
  for (std::uint64_t k = 0; k < 512; ++k) {
    EXPECT_EQ(reg.should_fire("worker_throw", k), first[k]) << k;
  }
  // A different seed gives a different (but still deterministic) set.
  ASSERT_TRUE(reg.configure("worker_throw:0.2", 43).ok());
  std::size_t diffs = 0;
  for (std::uint64_t k = 0; k < 512; ++k) {
    diffs += reg.should_fire("worker_throw", k) != first[k];
  }
  EXPECT_GT(diffs, 0u);
}

TEST_F(FaultRegistryTest, FiringRateTracksProbability) {
  auto& reg = FaultRegistry::global();
  ASSERT_TRUE(reg.configure("worker_throw:0.0,nan_tile:1.0", 9).ok());
  for (std::uint64_t k = 0; k < 200; ++k) {
    EXPECT_FALSE(reg.should_fire("worker_throw", k));
    EXPECT_TRUE(reg.should_fire("nan_tile", k));
  }
  EXPECT_EQ(reg.fired("worker_throw"), 0u);
  EXPECT_EQ(reg.fired("nan_tile"), 200u);
  EXPECT_EQ(reg.trials("worker_throw"), 200u);

  ASSERT_TRUE(reg.configure("worker_throw:0.5", 11).ok());
  std::size_t fired = 0;
  constexpr std::uint64_t kTrials = 10000;
  for (std::uint64_t k = 0; k < kTrials; ++k) {
    fired += reg.should_fire("worker_throw", k);
  }
  // The keyed hash is uniform: 0.5 +/- a generous tolerance.
  EXPECT_GT(fired, kTrials / 2 - 500);
  EXPECT_LT(fired, kTrials / 2 + 500);
}

TEST_F(FaultRegistryTest, SequenceKeyedTrialsAdvance) {
  auto& reg = FaultRegistry::global();
  ASSERT_TRUE(reg.configure("convert_nan:1.0", 5).ok());
  EXPECT_TRUE(reg.should_fire("convert_nan"));
  EXPECT_TRUE(reg.should_fire("convert_nan"));
  EXPECT_EQ(reg.trials("convert_nan"), 2u);
}

// --- Serving drills -------------------------------------------------------

struct Workload {
  dnn::SparseDnn net;
  dnn::DenseMatrix input;
};

Workload make_workload(std::size_t batch) {
  radixnet::RadixNetOptions opt;
  opt.neurons = 64;
  opt.layers = 12;
  opt.fanin = 8;
  opt.seed = 5;
  auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = 64;
  in_opt.batch = batch;
  in_opt.seed = 6;
  auto input = data::make_sdgc_input(in_opt).features;
  return {std::move(net), std::move(input)};
}

core::SnicitParams snicit_params() {
  core::SnicitParams p;
  p.threshold_layer = 4;
  p.sample_size = 16;
  p.downsample_dim = 0;
  return p;
}

TEST_F(FaultRegistryTest, WorkerThrowDrillLosesNothingAndStaysBitIdentical) {
  // The acceptance drill: a 512-sample stream under worker_throw:0.05
  // completes with zero lost batches and outputs bit-identical to the
  // fault-free run — retries land the faulted batches on fresh engines.
  auto wl = make_workload(512);
  core::ParallelStreamOptions opt;
  opt.batch_size = 16;  // 32 batches
  opt.workers = 4;
  opt.retry_backoff_ms = 0.0;  // keep the drill fast

  core::SnicitEngine clean_engine(snicit_params());
  const auto clean =
      core::ParallelStreamExecutor(opt).run(clean_engine, wl.net, wl.input);
  ASSERT_TRUE(clean.complete());
  EXPECT_EQ(clean.retries, 0u);

  ASSERT_TRUE(
      FaultRegistry::global().configure("worker_throw:0.05", 42).ok());
  core::SnicitEngine drilled_engine(snicit_params());
  const auto drilled =
      core::ParallelStreamExecutor(opt).run(drilled_engine, wl.net, wl.input);

  EXPECT_EQ(drilled.lost_batches(), 0u);
  EXPECT_TRUE(drilled.complete());
  EXPECT_GT(drilled.retries, 0u);  // seed 42 fires on this stream
  EXPECT_FLOAT_EQ(
      dnn::DenseMatrix::max_abs_diff(drilled.outputs, clean.outputs), 0.0f);
  EXPECT_GT(FaultRegistry::global().fired("worker_throw"), 0u);
}

TEST_F(FaultRegistryTest, WorkerThrowDrillIsReproducibleUnderOneSeed) {
  auto wl = make_workload(128);
  core::ParallelStreamOptions opt;
  opt.batch_size = 8;
  opt.workers = 3;
  opt.retry_backoff_ms = 0.0;

  std::size_t retries[2];
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(
        FaultRegistry::global().configure("worker_throw:0.2", 7).ok());
    core::SnicitEngine engine(snicit_params());
    const auto result =
        core::ParallelStreamExecutor(opt).run(engine, wl.net, wl.input);
    EXPECT_TRUE(result.complete());
    retries[round] = result.retries;
  }
  // Same seed, same stream -> the same batches fault on every run.
  EXPECT_EQ(retries[0], retries[1]);
  EXPECT_GT(retries[0], 0u);
}

TEST_F(FaultRegistryTest, QueueStallDrillIsOutputInvisible) {
  auto wl = make_workload(96);
  core::ParallelStreamOptions opt;
  opt.batch_size = 12;
  opt.workers = 3;

  core::SnicitEngine clean_engine(snicit_params());
  const auto clean =
      core::ParallelStreamExecutor(opt).run(clean_engine, wl.net, wl.input);

  ASSERT_TRUE(
      FaultRegistry::global().configure("queue_stall:1.0:1", 13).ok());
  core::SnicitEngine stalled_engine(snicit_params());
  const auto stalled = core::ParallelStreamExecutor(opt).run(
      stalled_engine, wl.net, wl.input);

  EXPECT_TRUE(stalled.complete());
  EXPECT_FLOAT_EQ(
      dnn::DenseMatrix::max_abs_diff(stalled.outputs, clean.outputs), 0.0f);
  EXPECT_GT(FaultRegistry::global().fired("queue_stall"), 0u);
}

TEST_F(FaultRegistryTest, CertainFaultExhaustsRetriesIntoFailureLedger) {
  // worker_throw:1.0 fires on every attempt of every batch: each batch
  // burns its full retry budget and is recorded, the stream still drains
  // cleanly, and failed batches keep zeroed output columns.
  auto wl = make_workload(64);
  ASSERT_TRUE(
      FaultRegistry::global().configure("worker_throw:1.0", 21).ok());
  core::ParallelStreamOptions opt;
  opt.batch_size = 16;  // 4 batches
  opt.workers = 2;
  opt.max_attempts = 2;
  opt.retry_backoff_ms = 0.0;
  core::SnicitEngine engine(snicit_params());
  const auto result =
      core::ParallelStreamExecutor(opt).run(engine, wl.net, wl.input);

  EXPECT_EQ(result.batches, 4u);
  EXPECT_EQ(result.lost_batches(), 4u);
  EXPECT_FALSE(result.complete());
  for (const auto& failure : result.failures) {
    EXPECT_EQ(failure.code, ErrorCode::kWorkerFault);
    EXPECT_EQ(failure.attempts, 2u);
    EXPECT_NE(failure.message.find("worker_throw"), std::string::npos);
  }
  for (std::size_t j = 0; j < result.outputs.cols(); ++j) {
    for (std::size_t r = 0; r < result.outputs.rows(); ++r) {
      EXPECT_EQ(result.outputs.at(r, j), 0.0f);
    }
  }
}

}  // namespace
}  // namespace snicit::platform::fault
