#include "platform/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace snicit::platform {
namespace {

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.run_chunks(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ZeroChunksIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.run_chunks(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SerialPoolStillExecutes) {
  ThreadPool pool(1);  // no worker threads: caller-only execution
  int sum = 0;
  pool.run_chunks(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, ReusableAcrossManyInvocations) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.run_chunks(17, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 17);
  }
}

TEST(ParallelFor, CoversRange) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool ran = false;
  parallel_for(5, 5, [&](std::size_t) { ran = true; });
  parallel_for(7, 3, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForRanges, PartitionIsDisjointAndComplete) {
  std::vector<std::atomic<int>> hits(512);
  parallel_for_ranges(0, 512, [&](std::size_t lo, std::size_t hi) {
    ASSERT_LE(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, NestedParallelismFallsBackToSerial) {
  // Baselines parallelize over chunks while inner kernels parallelize over
  // columns; nesting must execute correctly (serially inside a task).
  std::vector<std::atomic<int>> hits(64 * 16);
  parallel_for(0, 64, [&](std::size_t outer) {
    parallel_for(0, 16, [&](std::size_t inner) {
      hits[outer * 16 + inner].fetch_add(1);
    });
  });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ScopedSerialRegion, PinsParallelForToCallingThread) {
  EXPECT_FALSE(in_serial_region());
  ScopedSerialRegion region;
  EXPECT_TRUE(in_serial_region());
  const auto self = std::this_thread::get_id();
  std::atomic<int> off_thread{0};
  std::vector<std::atomic<int>> hits(256);
  parallel_for(0, 256, [&](std::size_t i) {
    hits[i].fetch_add(1);
    if (std::this_thread::get_id() != self) off_thread.fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(off_thread.load(), 0);  // everything ran inline
}

TEST(ScopedSerialRegion, NestsAndRestores) {
  EXPECT_FALSE(in_serial_region());
  {
    ScopedSerialRegion outer;
    {
      ScopedSerialRegion inner;
      EXPECT_TRUE(in_serial_region());
    }
    EXPECT_TRUE(in_serial_region());
  }
  EXPECT_FALSE(in_serial_region());
}

TEST(ThreadPool, ConcurrentExternalSubmittersBothComplete) {
  // Two independent threads racing run_chunks on one pool: the loser of
  // the dispatch race must fall back to inline execution, not abort.
  ThreadPool pool(2);
  constexpr int kRounds = 50;
  std::atomic<int> total{0};
  auto submit = [&] {
    for (int r = 0; r < kRounds; ++r) {
      pool.run_chunks(8, [&](std::size_t) { total.fetch_add(1); });
    }
  };
  std::thread a(submit);
  std::thread b(submit);
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2 * kRounds * 8);
}

TEST(ParallelFor, GrainRespected) {
  // With a huge grain the range must still be fully covered.
  std::vector<int> hits(100, 0);
  parallel_for(0, 100, [&](std::size_t i) { ++hits[i]; }, 1000);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

}  // namespace
}  // namespace snicit::platform
