// Randomized cross-engine equivalence and kernel edge-case fuzzing.
// Every engine (and SNICIT under randomized parameters) must agree with
// the exact reference on randomly shaped workloads; kernels must survive
// degenerate inputs (empty rows, all-zero batches, single columns,
// extreme values).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "baselines/bf2019.hpp"
#include "baselines/serial.hpp"
#include "baselines/snig2020.hpp"
#include "baselines/xy2021.hpp"
#include "data/synthetic.hpp"
#include "dnn/builder.hpp"
#include "dnn/reference.hpp"
#include "platform/rng.hpp"
#include "radixnet/radixnet.hpp"
#include "snicit/engine.hpp"
#include "sparse/coo.hpp"
#include "sparse/spmm.hpp"

namespace snicit {
namespace {

class EngineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EngineFuzz, AllEnginesAgreeOnRandomWorkloads) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  platform::Rng rng(seed * 2654435761ULL + 17);

  radixnet::RadixNetOptions opt;
  opt.neurons = static_cast<sparse::Index>(32 + 16 * rng.next_below(8));
  opt.layers = static_cast<int>(1 + rng.next_below(20));
  opt.fanin = static_cast<int>(
      2 + rng.next_below(static_cast<std::uint64_t>(opt.neurons / 4)));
  opt.seed = seed;
  const auto net = radixnet::make_radixnet(opt);

  data::SdgcInputOptions in_opt;
  in_opt.neurons = static_cast<std::size_t>(opt.neurons);
  in_opt.batch = 1 + rng.next_below(48);
  in_opt.classes = 1 + rng.next_below(10);
  in_opt.seed = seed + 99;
  const auto input = data::make_sdgc_input(in_opt).features;

  const auto golden = dnn::reference_forward(net, input);

  baselines::Bf2019Engine bf(1 + rng.next_below(5));
  baselines::Snig2020Engine snig(1 + rng.next_below(4),
                                 1 + rng.next_below(6));
  baselines::Xy2021Engine xy;
  baselines::SerialEngine serial;
  for (dnn::InferenceEngine* engine :
       std::initializer_list<dnn::InferenceEngine*>{&bf, &snig, &xy,
                                                    &serial}) {
    const auto result = engine->run(net, input);
    EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, golden), 1e-3f)
        << engine->name() << " seed=" << seed << " N=" << opt.neurons
        << " l=" << opt.layers << " B=" << input.cols();
  }

  // SNICIT with randomized parameters (no pruning: must track golden).
  core::SnicitParams params;
  params.threshold_layer = static_cast<int>(
      rng.next_below(static_cast<std::uint64_t>(opt.layers) + 2));
  params.sample_size =
      static_cast<int>(1 + rng.next_below(input.cols()));
  params.downsample_dim = static_cast<int>(rng.next_below(32));
  params.ne_refresh_interval = static_cast<int>(1 + rng.next_below(10));
  params.reconvert_interval = static_cast<int>(rng.next_below(8));
  core::SnicitEngine snicit(params);
  const auto result = snicit.run(net, input);
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, golden), 2e-2f)
      << "SNICIT seed=" << seed << " t=" << params.threshold_layer
      << " s=" << params.sample_size << " n=" << params.downsample_dim;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz, ::testing::Range(1, 25));

// Column-subset kernel property: for random (W, Y, subset) triples every
// *_cols variant must (a) leave untouched columns bit-identical and
// (b) produce, on the touched columns, exactly the full kernel's values
// for those columns (same per-column accumulation order, so the match is
// bitwise, not approximate).
class ColsKernelFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ColsKernelFuzz, SubsetVariantsTouchOnlyTheirColumns) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  platform::Rng rng(seed * 48271 + 5);
  const auto rows = static_cast<sparse::Index>(8 + rng.next_below(72));
  const auto cols = static_cast<sparse::Index>(8 + rng.next_below(72));
  sparse::CooMatrix coo(rows, cols);
  for (sparse::Index r = 0; r < rows; ++r) {
    for (sparse::Index c = 0; c < cols; ++c) {
      if (rng.next_bool(0.2)) coo.add(r, c, rng.uniform(-1.0f, 1.0f));
    }
  }
  const auto w = sparse::CsrMatrix::from_coo(coo);
  const auto w_csc = sparse::CscMatrix::from_csr(w);

  const std::size_t batch = 1 + rng.next_below(40);
  dnn::DenseMatrix y(static_cast<std::size_t>(cols), batch);
  for (std::size_t i = 0; i < y.rows() * y.cols(); ++i) {
    if (rng.next_bool(0.5)) y.data()[i] = rng.uniform(0.0f, 2.0f);
  }
  std::vector<sparse::Index> subset;
  for (std::size_t j = 0; j < batch; ++j) {
    if (rng.next_bool(0.5)) subset.push_back(static_cast<sparse::Index>(j));
  }

  dnn::DenseMatrix full_gather(static_cast<std::size_t>(rows), batch);
  sparse::spmm_gather(w, y, full_gather);
  dnn::DenseMatrix full_scatter(static_cast<std::size_t>(rows), batch);
  sparse::spmm_scatter(w_csc, y, full_scatter);

  constexpr float kSentinel = 123.25f;
  const auto check = [&](const dnn::DenseMatrix& out,
                         const dnn::DenseMatrix& full, const char* name) {
    std::vector<bool> touched(batch, false);
    for (sparse::Index jc : subset) {
      touched[static_cast<std::size_t>(jc)] = true;
    }
    for (std::size_t j = 0; j < batch; ++j) {
      const float* oc = out.col(j);
      const float* fc = full.col(j);
      for (std::size_t r = 0; r < out.rows(); ++r) {
        if (touched[j]) {
          ASSERT_EQ(std::memcmp(&oc[r], &fc[r], sizeof(float)), 0)
              << name << " seed=" << seed << " col " << j << " row " << r;
        } else {
          ASSERT_EQ(oc[r], kSentinel)
              << name << " seed=" << seed << " clobbered col " << j;
        }
      }
    }
  };

  dnn::DenseMatrix out(static_cast<std::size_t>(rows), batch, kSentinel);
  sparse::spmm_gather_cols(w, y, subset, out);
  check(out, full_gather, "gather_cols");
  out = dnn::DenseMatrix(static_cast<std::size_t>(rows), batch, kSentinel);
  sparse::spmm_gather_cols_simd(w, y, subset, out);
  check(out, full_gather, "gather_cols_simd");
  out = dnn::DenseMatrix(static_cast<std::size_t>(rows), batch, kSentinel);
  sparse::spmm_gather_cols_threaded(w, y, subset, out);
  check(out, full_gather, "gather_cols_threaded");
  out = dnn::DenseMatrix(static_cast<std::size_t>(rows), batch, kSentinel);
  sparse::spmm_scatter_cols(w_csc, y, subset, out);
  check(out, full_scatter, "scatter_cols");
  out = dnn::DenseMatrix(static_cast<std::size_t>(rows), batch, kSentinel);
  sparse::spmm_scatter_cols_simd(w_csc, y, subset, out);
  check(out, full_scatter, "scatter_cols_simd");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColsKernelFuzz, ::testing::Range(1, 21));

TEST(KernelEdge, SingleNeuronNetwork) {
  dnn::DnnBuilder builder(1, 4.0f);
  const auto net =
      builder.add_layer({{0, 0, 2.0f}}).with_bias(-0.5f).build();
  dnn::DenseMatrix x(1, 3);
  x.at(0, 0) = 1.0f;
  x.at(0, 1) = 0.1f;
  x.at(0, 2) = 3.0f;
  const auto y = dnn::reference_forward(net, x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 0.0f);   // 0.2-0.5 clipped
  EXPECT_FLOAT_EQ(y.at(0, 2), 4.0f);   // 5.5 clipped at ymax
}

TEST(KernelEdge, SingleColumnBatchThroughSnicit) {
  radixnet::RadixNetOptions opt;
  opt.neurons = 32;
  opt.layers = 6;
  opt.fanin = 4;
  const auto net = radixnet::make_radixnet(opt);
  dnn::DenseMatrix x(32, 1, 0.7f);
  core::SnicitParams params;
  params.threshold_layer = 3;
  params.sample_size = 8;  // clamped to the 1 available column
  core::SnicitEngine engine(params);
  const auto result = engine.run(net, x);
  const auto golden = dnn::reference_forward(net, x);
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, golden), 1e-4f);
  EXPECT_DOUBLE_EQ(result.diagnostics.at("centroids"), 1.0);
}

TEST(KernelEdge, AllZeroInputStaysConsistent) {
  radixnet::RadixNetOptions opt;
  opt.neurons = 64;
  opt.layers = 5;
  opt.fanin = 8;
  opt.bias = -0.1f;  // negative bias keeps zeros at zero
  const auto net = radixnet::make_radixnet(opt);
  dnn::DenseMatrix x(64, 8);  // all zeros
  core::SnicitParams params;
  params.threshold_layer = 2;
  core::SnicitEngine engine(params);
  const auto result = engine.run(net, x);
  EXPECT_EQ(result.output.count_nonzeros(), 0u);
}

TEST(KernelEdge, ExtremeValuesDoNotOverflow) {
  dnn::DnnBuilder builder(4, 32.0f);
  const auto net = builder
                       .add_layer({{0, 0, 1e30f},
                                   {1, 1, -1e30f},
                                   {2, 2, 1e-30f},
                                   {3, 3, 1.0f}})
                       .build();
  dnn::DenseMatrix x(4, 1, 1.0f);
  const auto y = dnn::reference_forward(net, x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 32.0f);  // huge positive clipped
  EXPECT_FLOAT_EQ(y.at(1, 0), 0.0f);   // huge negative clipped
  EXPECT_FLOAT_EQ(y.at(2, 0), 1e-30f);
  EXPECT_FLOAT_EQ(y.at(3, 0), 1.0f);
}

TEST(KernelEdge, DenormalActivationsSurviveKernels) {
  platform::Rng rng(3);
  sparse::CooMatrix coo(8, 8);
  for (int i = 0; i < 8; ++i) {
    coo.add(i, (i + 1) % 8, 1.0f);
  }
  const auto w = sparse::CsrMatrix::from_coo(coo);
  dnn::DenseMatrix y(8, 2, 1e-40f);  // subnormal floats
  dnn::DenseMatrix out(8, 2);
  sparse::spmm_gather(w, y, out);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_GE(out.data()[i], 0.0f);
    EXPECT_LT(out.data()[i], 1e-30f);
  }
}

}  // namespace
}  // namespace snicit
