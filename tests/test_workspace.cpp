// Workspace arena semantics plus the PR's headline claim: after warm-up
// the engine hot paths stop touching the heap. The claim is checked two
// ways — directly, by overriding the global allocator in this TU and
// counting operator new calls during a steady-state run_into, and
// through the workspace's own accounting (`steady_state_allocs`), which
// must stay zero across warm DynamicBatcher rounds.
//
// snig2020 is deliberately absent from the zero-alloc sweep: its
// per-run TaskGraph rebuild is the documented exception (see
// baselines/snig2020.cpp).
#include "platform/workspace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#include "baselines/bf2019.hpp"
#include "baselines/serial.hpp"
#include "baselines/xy2021.hpp"
#include "data/synthetic.hpp"
#include "dnn/engine.hpp"
#include "platform/metrics.hpp"
#include "platform/thread_pool.hpp"
#include "radixnet/radixnet.hpp"
#include "serve/dynamic_batcher.hpp"
#include "snicit/engine.hpp"

// ---------------------------------------------------------------------
// Global allocation counter. Every operator new in the test binary bumps
// the counter; tests snapshot it around the region under scrutiny. The
// hooks themselves never allocate (malloc/aligned_alloc only) — which is
// also why the matching deletes legitimately call free(), despite what
// GCC's -Wmismatched-new-delete heuristic concludes at inlined call
// sites.
// ---------------------------------------------------------------------
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<std::size_t> g_alloc_count{0};

std::size_t alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* operator new(std::size_t size, std::align_val_t al) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (size + a - 1) / a * a;
  return std::aligned_alloc(a, rounded ? rounded : a);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace snicit {
namespace {

using platform::Workspace;
using sparse::ZeroFill;

// ------------------------- Workspace unit tests ----------------------

TEST(Workspace, MatSlotGrowsOnceAndReusesCapacity) {
  Workspace ws;
  auto& m = ws.mat(Workspace::kPing, 8, 8, ZeroFill::kYes);
  EXPECT_EQ(m.rows(), 8u);
  EXPECT_EQ(m.cols(), 8u);
  const std::size_t bytes = ws.bytes_reserved();
  EXPECT_GE(bytes, 8u * 8u * sizeof(float));

  // Smaller (and equal) reshapes reuse the storage: no new bytes.
  ws.mat(Workspace::kPing, 4, 4, ZeroFill::kNo);
  ws.mat(Workspace::kPing, 8, 8, ZeroFill::kNo);
  EXPECT_EQ(ws.bytes_reserved(), bytes);

  // Growth is accounted.
  ws.mat(Workspace::kPing, 16, 16, ZeroFill::kNo);
  EXPECT_GT(ws.bytes_reserved(), bytes);
}

TEST(Workspace, ZeroFillSemantics) {
  Workspace ws;
  auto& m = ws.mat(Workspace::kScratch, 4, 4, ZeroFill::kYes);
  for (std::size_t i = 0; i < 16; ++i) m.data()[i] = 1.0f;
  // kNo at the same shape leaves the contents alone.
  ws.mat(Workspace::kScratch, 4, 4, ZeroFill::kNo);
  EXPECT_EQ(m.data()[0], 1.0f);
  EXPECT_EQ(m.data()[15], 1.0f);
  // kYes zeroes.
  ws.mat(Workspace::kScratch, 4, 4, ZeroFill::kYes);
  EXPECT_EQ(m.data()[0], 0.0f);
  EXPECT_EQ(m.data()[15], 0.0f);
}

TEST(Workspace, SteadyStateAllocsCountGrowthAfterWarm) {
  const std::size_t global_before = Workspace::global_steady_state_allocs();
  Workspace ws;
  ws.mat(Workspace::kPing, 32, 32, ZeroFill::kNo);
  ws.vec(Workspace::kColumns, 32);
  EXPECT_EQ(ws.steady_state_allocs(), 0u);

  ws.mark_warm();
  EXPECT_TRUE(ws.warm());

  // Within-capacity reuse after warm-up is free.
  ws.mat(Workspace::kPing, 16, 16, ZeroFill::kNo);
  ws.vec(Workspace::kColumns, 8);
  EXPECT_EQ(ws.steady_state_allocs(), 0u);

  // Growth after warm-up is the smell this PR hunts: counted, locally
  // and globally.
  ws.mat(Workspace::kPing, 64, 64, ZeroFill::kNo);
  EXPECT_EQ(ws.steady_state_allocs(), 1u);
  EXPECT_EQ(Workspace::global_steady_state_allocs(), global_before + 1);
}

TEST(Workspace, CopyIsColdMoveTransfersAccounting) {
  Workspace ws;
  ws.mat(Workspace::kPing, 8, 8, ZeroFill::kNo);
  ws.mark_warm();
  const std::size_t bytes = ws.bytes_reserved();
  ASSERT_GT(bytes, 0u);

  // Engine clones copy the workspace cold: nothing carried over.
  Workspace copy(ws);
  EXPECT_EQ(copy.bytes_reserved(), 0u);
  EXPECT_FALSE(copy.warm());
  EXPECT_EQ(copy.mat(Workspace::kPing).rows(), 0u);

  Workspace moved(std::move(ws));
  EXPECT_EQ(moved.bytes_reserved(), bytes);
  EXPECT_TRUE(moved.warm());
  EXPECT_EQ(ws.bytes_reserved(), 0u);  // NOLINT: post-move inspection
}

TEST(Workspace, GlobalBytesReleasedOnDestruction) {
  const std::size_t before = Workspace::global_bytes_reserved();
  {
    Workspace ws;
    ws.mat(Workspace::kPong, 64, 64, ZeroFill::kNo);
    EXPECT_GE(Workspace::global_bytes_reserved(),
              before + 64u * 64u * sizeof(float));
  }
  EXPECT_EQ(Workspace::global_bytes_reserved(), before);
}

TEST(Workspace, TypedStatePersistsAcrossAccesses) {
  Workspace ws;
  auto& v = ws.state<std::vector<int>>();
  v.assign({1, 2, 3});
  auto& again = ws.state<std::vector<int>>();
  EXPECT_EQ(&v, &again);
  EXPECT_EQ(again.size(), 3u);
}

TEST(Workspace, PublishMetricsExportsGauges) {
  Workspace ws;
  ws.mat(Workspace::kPing, 16, 16, ZeroFill::kNo);
  platform::metrics::set_enabled(true);
  Workspace::publish_metrics();
  platform::metrics::set_enabled(false);
  const auto gauges =
      platform::metrics::MetricsRegistry::global().gauge_values();
  ASSERT_TRUE(gauges.count("workspace.bytes_reserved"));
  ASSERT_TRUE(gauges.count("workspace.steady_state_allocs"));
  EXPECT_GE(gauges.at("workspace.bytes_reserved"),
            static_cast<double>(16u * 16u * sizeof(float)));
}

// --------------------- zero-alloc engine hot paths -------------------

struct TestNet {
  dnn::SparseDnn net;
  dnn::DenseMatrix input;
};

TestNet make_test_net(int layers = 12, std::uint64_t seed = 2,
                      sparse::Index neurons = 128, std::size_t batch = 32) {
  radixnet::RadixNetOptions opt;
  opt.neurons = neurons;
  opt.layers = layers;
  opt.fanin = 16;
  opt.seed = seed;
  auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = static_cast<std::size_t>(neurons);
  in_opt.batch = batch;
  in_opt.classes = 6;
  in_opt.seed = seed + 100;
  auto input = data::make_sdgc_input(in_opt).features;
  return {std::move(net), std::move(input)};
}

// Runs the engine twice to warm every buffer (workspace slots, interned
// diagnostics, thread-local kernel scratch — the serial region keeps all
// of it on this thread), then counts operator new calls during a third,
// steady-state run. The contract under test: exactly zero.
std::size_t steady_state_allocs_of(dnn::InferenceEngine& engine,
                                   const TestNet& tn) {
  platform::ScopedSerialRegion serial;
  platform::Workspace ws;
  dnn::RunResult result;
  engine.run_into(tn.net, tn.input, ws, result);
  engine.run_into(tn.net, tn.input, ws, result);
  const std::size_t before = alloc_count();
  engine.run_into(tn.net, tn.input, ws, result);
  return alloc_count() - before;
}

TEST(ZeroAllocSteadyState, SerialEngine) {
  const auto tn = make_test_net();
  baselines::SerialEngine engine;
  EXPECT_EQ(steady_state_allocs_of(engine, tn), 0u);
}

TEST(ZeroAllocSteadyState, Bf2019Engine) {
  const auto tn = make_test_net();
  baselines::Bf2019Engine engine(4);
  EXPECT_EQ(steady_state_allocs_of(engine, tn), 0u);
}

TEST(ZeroAllocSteadyState, Xy2021Engine) {
  const auto tn = make_test_net();
  baselines::Xy2021Engine engine;
  EXPECT_EQ(steady_state_allocs_of(engine, tn), 0u);
}

TEST(ZeroAllocSteadyState, SnicitEngine) {
  const auto tn = make_test_net();
  core::SnicitParams params;
  params.threshold_layer = 6;
  params.sample_size = 16;
  params.downsample_dim = 0;
  params.prune_threshold = 0.0f;
  core::SnicitEngine engine(params);
  EXPECT_EQ(steady_state_allocs_of(engine, tn), 0u);
}

// ------------------- warm DynamicBatcher rounds ----------------------

// Three identical warm-up rounds through a manual-drive batcher, then a
// measured fourth: the workspaces behind the serving lanes must report
// zero steady-state growth once warm.
TEST(ZeroAllocSteadyState, DynamicBatcherWarmRounds) {
  const auto tn = make_test_net(10, 3, 96, 1);
  baselines::SerialEngine engine;

  serve::ServeOptions opts;
  opts.max_batch = 8;
  opts.batch_timeout_ms = 0.0;
  opts.packer = "fifo";
  opts.workers = 1;
  serve::DynamicBatcher batcher(engine, tn.net, opts, serve::ManualDrive{});

  const std::size_t rows = tn.input.rows();
  auto run_round = [&] {
    for (std::size_t s = 0; s < 8; ++s) {
      std::vector<float> features(rows);
      for (std::size_t r = 0; r < rows; ++r) {
        features[r] = tn.input.col(0)[r] + static_cast<float>(s) * 0.01f;
      }
      ASSERT_TRUE(batcher.submit(std::move(features)).ok());
    }
    ASSERT_TRUE(batcher.drive(0.0));
  };

  run_round();
  run_round();
  run_round();

  const std::size_t warm_allocs = Workspace::global_steady_state_allocs();
  run_round();
  EXPECT_EQ(Workspace::global_steady_state_allocs(), warm_allocs)
      << "serving lane workspaces grew after three warm rounds";

  const auto report = batcher.finish();
  EXPECT_EQ(report.results.size(), 32u);
}

}  // namespace
}  // namespace snicit
