#include "snicit/convert.hpp"

#include <gtest/gtest.h>

#include "platform/rng.hpp"

namespace snicit::core {
namespace {

/// 4 columns: col0/col1 nearly equal, col2/col3 nearly equal.
DenseMatrix two_cluster_batch() {
  DenseMatrix y(6, 4);
  for (std::size_t r = 0; r < 6; ++r) {
    y.at(r, 0) = 1.0f;
    y.at(r, 1) = 1.0f;
    y.at(r, 2) = 5.0f;
    y.at(r, 3) = 5.0f;
  }
  y.at(0, 1) = 1.5f;  // col1 differs from col0 in one entry
  y.at(5, 3) = 4.0f;  // col3 differs from col2 in one entry
  return y;
}

TEST(Convert, CentroidColumnsStoredVerbatim) {
  const auto y = two_cluster_batch();
  const auto batch = convert_to_compressed(y, {0, 2}, 0.0f);
  for (std::size_t r = 0; r < 6; ++r) {
    EXPECT_FLOAT_EQ(batch.yhat.at(r, 0), y.at(r, 0));
    EXPECT_FLOAT_EQ(batch.yhat.at(r, 2), y.at(r, 2));
  }
  EXPECT_EQ(batch.mapper[0], -1);
  EXPECT_EQ(batch.mapper[2], -1);
  EXPECT_TRUE(batch.is_centroid(0));
  EXPECT_FALSE(batch.is_centroid(1));
}

TEST(Convert, NonCentroidsMapToNearestByL0) {
  const auto y = two_cluster_batch();
  const auto batch = convert_to_compressed(y, {0, 2}, 0.0f);
  EXPECT_EQ(batch.mapper[1], 0);  // col1 differs from col0 in 1 place,
                                  // from col2 in 6 places
  EXPECT_EQ(batch.mapper[3], 2);
}

TEST(Convert, ResidueIsExactDifference) {
  const auto y = two_cluster_batch();
  const auto batch = convert_to_compressed(y, {0, 2}, 0.0f);
  // col1 residue: 0 everywhere except row 0 = 0.5.
  EXPECT_FLOAT_EQ(batch.yhat.at(0, 1), 0.5f);
  for (std::size_t r = 1; r < 6; ++r) {
    EXPECT_FLOAT_EQ(batch.yhat.at(r, 1), 0.0f);
  }
  // col3 residue: row 5 = -1.
  EXPECT_FLOAT_EQ(batch.yhat.at(5, 3), -1.0f);
}

TEST(Convert, ExactDuplicateBecomesEmptyColumn) {
  DenseMatrix y(4, 3, 2.0f);  // all columns identical
  const auto batch = convert_to_compressed(y, {0}, 0.0f);
  EXPECT_EQ(batch.ne_rec[0], 1);  // centroid always non-empty
  EXPECT_EQ(batch.ne_rec[1], 0);
  EXPECT_EQ(batch.ne_rec[2], 0);
  ASSERT_EQ(batch.ne_idx.size(), 1u);
  EXPECT_EQ(batch.ne_idx[0], 0);
}

TEST(Convert, PruneThresholdZeroesSmallResidues) {
  DenseMatrix y(4, 2, 1.0f);
  y.at(2, 1) = 1.005f;  // tiny residue 0.005
  const auto strict = convert_to_compressed(y, {0}, 0.0f);
  EXPECT_EQ(strict.ne_rec[1], 1);
  const auto pruned = convert_to_compressed(y, {0}, 0.01f);
  EXPECT_EQ(pruned.ne_rec[1], 0);
  EXPECT_FLOAT_EQ(pruned.yhat.at(2, 1), 0.0f);
}

TEST(Convert, RefreshNeIdxTracksNeRec) {
  DenseMatrix y(4, 4, 1.0f);
  y.at(0, 3) = 9.0f;
  auto batch = convert_to_compressed(y, {0}, 0.0f);
  ASSERT_EQ(batch.ne_idx.size(), 2u);  // centroid + column 3
  EXPECT_EQ(batch.ne_idx[0], 0);
  EXPECT_EQ(batch.ne_idx[1], 3);
  batch.ne_rec[3] = 0;
  batch.ne_rec[2] = 1;
  batch.refresh_ne_idx();
  ASSERT_EQ(batch.ne_idx.size(), 2u);
  EXPECT_EQ(batch.ne_idx[1], 2);
}

TEST(Convert, TieBreaksToLowestCentroidIndex) {
  // A column equidistant from both centroids must map to the first.
  DenseMatrix y(2, 3);
  y.at(0, 0) = 0.0f;  // centroid A = (0, 0)
  y.at(0, 1) = 4.0f;  // centroid B = (4, 4)
  y.at(1, 1) = 4.0f;
  y.at(0, 2) = 0.0f;  // query = (0, 4): L0 distance 1 from both
  y.at(1, 2) = 4.0f;
  const auto batch = convert_to_compressed(y, {0, 1}, 0.0f);
  EXPECT_EQ(batch.mapper[2], 0);
}

TEST(Convert, SparsificationOnClusteredData) {
  // The paper's core claim at the conversion step: Ŷ has far fewer
  // nonzeros than Y when columns are clustered.
  platform::Rng rng(7);
  const std::size_t n = 64;
  const std::size_t b = 40;
  DenseMatrix y(n, b);
  for (std::size_t j = 0; j < b; ++j) {
    const int cls = static_cast<int>(j % 2);
    for (std::size_t r = 0; r < n; ++r) {
      float v = cls == 0 ? 1.0f : 3.0f;
      if (rng.next_bool(0.05)) v += 0.5f;  // sparse perturbations
      y.at(r, j) = v;
    }
  }
  const auto batch = convert_to_compressed(y, {0, 1}, 0.0f);
  EXPECT_LT(batch.yhat.count_nonzeros(), y.count_nonzeros() / 4);
}

}  // namespace
}  // namespace snicit::core
