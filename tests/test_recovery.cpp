#include "snicit/recovery.hpp"

#include <gtest/gtest.h>

#include "platform/rng.hpp"

namespace snicit::core {
namespace {

TEST(Recovery, InvertsConversionExactly) {
  // recover(convert(y)) == y bitwise: Eq. (6) reverses Eq. (4), and
  // (a - b) + b == a holds in IEEE float when no rounding occurs in the
  // subtraction... which is not generally true — so the library's
  // guarantee is elementwise closeness; exactness holds for values from
  // a shared grid, as produced by clipped activations.
  DenseMatrix y(8, 6);
  platform::Rng rng(3);
  for (std::size_t j = 0; j < 6; ++j) {
    for (std::size_t r = 0; r < 8; ++r) {
      // Values on a coarse grid: subtraction is exact (no rounding).
      y.at(r, j) = 0.25f * static_cast<float>(rng.next_below(16));
    }
  }
  const auto batch = convert_to_compressed(y, {0, 3}, 0.0f);
  const auto recovered = recover_results(batch);
  EXPECT_FLOAT_EQ(DenseMatrix::max_abs_diff(recovered, y), 0.0f);
}

TEST(Recovery, CentroidColumnsPassThrough) {
  DenseMatrix y(4, 3);
  y.at(0, 1) = 7.0f;
  const auto batch = convert_to_compressed(y, {1}, 0.0f);
  const auto recovered = recover_results(batch);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_FLOAT_EQ(recovered.at(r, 1), y.at(r, 1));
  }
}

TEST(Recovery, EmptyResidueRecoversCentroidValue) {
  DenseMatrix y(4, 2, 3.0f);  // duplicate columns
  const auto batch = convert_to_compressed(y, {0}, 0.0f);
  ASSERT_EQ(batch.ne_rec[1], 0);
  const auto recovered = recover_results(batch);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_FLOAT_EQ(recovered.at(r, 1), 3.0f);
  }
}

TEST(Recovery, HandComputedResidueAddition) {
  DenseMatrix y(2, 2);
  y.at(0, 0) = 1.0f;
  y.at(1, 0) = 2.0f;
  y.at(0, 1) = 1.5f;
  y.at(1, 1) = 2.0f;
  auto batch = convert_to_compressed(y, {0}, 0.0f);
  // Residue col1 = (0.5, 0). Now perturb it and check recovery adds the
  // *current* centroid (as after post-convergence updates).
  batch.yhat.at(0, 0) = 10.0f;  // centroid evolved
  batch.yhat.at(1, 0) = 20.0f;
  batch.yhat.at(0, 1) = -1.0f;  // residue evolved
  batch.yhat.at(1, 1) = 0.0f;
  const auto recovered = recover_results(batch);
  EXPECT_FLOAT_EQ(recovered.at(0, 1), 9.0f);   // -1 + 10
  EXPECT_FLOAT_EQ(recovered.at(1, 1), 20.0f);  // 0 + 20
}

TEST(Recovery, AllColumnsCentroidsIsIdentity) {
  DenseMatrix y(3, 3);
  platform::Rng rng(5);
  for (std::size_t i = 0; i < 9; ++i) {
    y.data()[i] = rng.uniform(-4.0f, 4.0f);
  }
  const auto batch = convert_to_compressed(y, {0, 1, 2}, 0.0f);
  const auto recovered = recover_results(batch);
  EXPECT_FLOAT_EQ(DenseMatrix::max_abs_diff(recovered, y), 0.0f);
}

}  // namespace
}  // namespace snicit::core
