#include "dnn/analysis.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "radixnet/radixnet.hpp"

namespace snicit::dnn {
namespace {

TEST(ClusterCensus, AllIdenticalColumns) {
  DenseMatrix y(16, 8, 3.0f);
  const auto census = cluster_census(y);
  EXPECT_EQ(census.distinct, 1u);
  EXPECT_EQ(census.largest, 8u);
  EXPECT_DOUBLE_EQ(census.mean_within_distance, 0.0);
}

TEST(ClusterCensus, AllDistinctColumns) {
  DenseMatrix y(16, 6);
  for (std::size_t j = 0; j < 6; ++j) {
    for (std::size_t r = 0; r < 16; ++r) {
      y.at(r, j) = static_cast<float>(j * 100);
    }
  }
  const auto census = cluster_census(y);
  EXPECT_EQ(census.distinct, 6u);
  EXPECT_EQ(census.largest, 1u);
}

TEST(ClusterCensus, TwoGroups) {
  DenseMatrix y(32, 10);
  for (std::size_t j = 0; j < 10; ++j) {
    const float v = j < 7 ? 1.0f : 9.0f;
    for (std::size_t r = 0; r < 32; ++r) y.at(r, j) = v;
  }
  const auto census = cluster_census(y);
  EXPECT_EQ(census.distinct, 2u);
  EXPECT_EQ(census.largest, 7u);
}

TEST(ClusterCensus, EtaToleranceGroupsNearDuplicates) {
  DenseMatrix y(16, 2, 1.0f);
  for (std::size_t r = 0; r < 16; ++r) {
    y.at(r, 1) = 1.02f;  // off by 0.02 everywhere
  }
  EXPECT_EQ(cluster_census(y, 0.0f).distinct, 2u);
  EXPECT_EQ(cluster_census(y, 0.05f).distinct, 1u);
}

TEST(ClusterCensus, EmptyBatch) {
  DenseMatrix y;
  const auto census = cluster_census(y);
  EXPECT_EQ(census.distinct, 0u);
}

TEST(LayerTrace, RecordsConvergenceOnSdgcNet) {
  radixnet::RadixNetOptions opt;
  opt.neurons = 256;
  opt.layers = 30;
  opt.fanin = 32;
  const auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = 256;
  in_opt.batch = 64;
  const auto input = data::make_sdgc_input(in_opt).features;

  const auto trace = layer_trace(net, input);
  ASSERT_EQ(trace.size(), 30u);
  EXPECT_EQ(trace.front().layer, 1u);
  EXPECT_EQ(trace.back().layer, 30u);
  for (const auto& row : trace) {
    EXPECT_GE(row.density, 0.0);
    EXPECT_LE(row.density, 1.0);
    EXPECT_GE(row.saturated_fraction, 0.0);
    EXPECT_LE(row.saturated_fraction, row.density + 1e-12);
    EXPECT_GE(row.distinct_columns, 1u);
    EXPECT_LE(row.distinct_columns, 64u);
  }
  // The calibrated 256-neuron regime collapses the batch well before
  // layer 30 (the Figure 1 claim at substrate scale).
  EXPECT_LT(trace.back().distinct_columns,
            trace.front().distinct_columns);
  EXPECT_LE(trace.back().distinct_columns, 8u);
}

}  // namespace
}  // namespace snicit::dnn
