// End-to-end flows across modules: the two pipelines the paper evaluates —
// (1) SDGC-style large sparse nets, all engines vs the golden reference;
// (2) medium-scale trained classifier, SNICIT accuracy loss vs exact.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "baselines/bf2019.hpp"
#include "baselines/snig2020.hpp"
#include "baselines/xy2021.hpp"
#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "radixnet/radixnet.hpp"
#include "radixnet/sdgc_io.hpp"
#include "snicit/engine.hpp"
#include "train/loss.hpp"
#include "train/mlp.hpp"

namespace snicit {
namespace {

TEST(Integration, SdgcPipelineAllEnginesAgree) {
  radixnet::RadixNetOptions opt;
  opt.neurons = 256;
  opt.layers = 30;
  opt.fanin = 16;
  opt.seed = 77;
  const auto net = radixnet::make_radixnet(opt);

  data::SdgcInputOptions in_opt;
  in_opt.neurons = 256;
  in_opt.batch = 64;
  in_opt.classes = 8;
  in_opt.seed = 78;
  const auto input = data::make_sdgc_input(in_opt).features;

  const auto golden = dnn::reference_forward(net, input);
  const auto golden_cats = dnn::sdgc_categories(golden, 1e-3f);

  core::SnicitParams params;
  params.threshold_layer = 10;
  params.sample_size = 32;
  params.downsample_dim = 16;
  params.ne_refresh_interval = 5;

  std::vector<std::unique_ptr<dnn::InferenceEngine>> engines;
  engines.push_back(std::make_unique<baselines::Bf2019Engine>(4));
  engines.push_back(std::make_unique<baselines::Snig2020Engine>(4, 5));
  engines.push_back(std::make_unique<baselines::Xy2021Engine>());
  engines.push_back(std::make_unique<core::SnicitEngine>(params));

  for (auto& engine : engines) {
    const auto result = engine->run(net, input);
    const auto cats = dnn::sdgc_categories(result.output, 1e-3f);
    EXPECT_DOUBLE_EQ(dnn::category_match_rate(cats, golden_cats), 1.0)
        << engine->name();
    EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, golden), 0.05f)
        << engine->name();
  }
}

TEST(Integration, SnicitCompressesDeepNetWorkload) {
  // The headline mechanism: on a deep saturating net, post-convergence
  // layers must process far fewer nonzeros than the dense batch carries.
  radixnet::RadixNetOptions opt;
  opt.neurons = 256;
  opt.layers = 40;
  opt.fanin = 16;
  opt.seed = 5;
  const auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = 256;
  in_opt.batch = 128;
  in_opt.classes = 10;
  in_opt.seed = 6;
  const auto input = data::make_sdgc_input(in_opt).features;

  core::SnicitParams params;
  params.threshold_layer = 15;
  params.sample_size = 32;
  params.downsample_dim = 16;
  params.record_trace = true;
  core::SnicitEngine engine(params);
  engine.run(net, input);

  const auto& trace = engine.last_trace();
  ASSERT_FALSE(trace.ne_count.empty());
  // Late post-convergence layers carry only a small set of non-empty
  // columns relative to the batch.
  EXPECT_LT(trace.ne_count.back(), input.cols() / 2);
  // And the compressed representation is much sparser than dense N*B.
  EXPECT_LT(trace.compressed_nnz.back(), 256u * 128u / 4u);
}

TEST(Integration, MediumDnnAccuracyLossSmall) {
  // Train a small classifier, run its sparse stack through SNICIT with
  // pruning, and bound the accuracy loss (Table 4's criterion).
  data::ClusteredOptions dopt;
  dopt.dim = 64;
  dopt.classes = 5;
  dopt.count = 500;
  dopt.noise = 0.08;
  dopt.seed = 10;
  const auto ds = data::make_clustered_dataset(dopt);
  const auto train_set = ds.slice(0, 400);
  const auto test_set = ds.slice(400, 500);

  train::MlpOptions mopt;
  mopt.in_dim = 64;
  mopt.hidden = 48;
  mopt.sparse_layers = 8;
  mopt.classes = 5;
  mopt.density = 0.55;
  train::SparseMlp mlp(mopt);
  train::TrainOptions topt;
  topt.epochs = 10;
  topt.batch_size = 32;
  topt.adam.lr = 3e-3f;
  mlp.fit(train_set, topt);
  const double exact_acc = mlp.evaluate(test_set);
  ASSERT_GT(exact_acc, 0.85);

  const auto net = mlp.to_sparse_dnn("medium");
  const auto h0 = mlp.hidden_input(test_set.features);

  core::SnicitParams params;
  params.threshold_layer = 4;  // l/2
  params.sample_size = 32;
  params.downsample_dim = 0;   // no downsampling for medium nets (§4.2.1)
  params.prune_threshold = 0.01f;
  core::SnicitEngine engine(params);
  const auto result = engine.run(net, h0);
  const auto logits = mlp.logits_from_hidden(result.output);
  const double snicit_acc = train::accuracy(logits, test_set.labels);

  EXPECT_GE(snicit_acc, exact_acc - 0.02);  // paper: <= ~1.4% loss
}

TEST(Integration, TsvRoundTripPreservesInference) {
  // Save a generated net in SDGC format, reload, and verify identical
  // inference results — the interoperability path for real SDGC files.
  radixnet::RadixNetOptions opt;
  opt.neurons = 64;
  opt.layers = 5;
  opt.fanin = 8;
  opt.bias = -0.25f;
  const auto net = radixnet::make_radixnet(opt);

  const auto dir = std::filesystem::temp_directory_path() /
                   "snicit_integration_tsv";
  std::filesystem::create_directories(dir);
  const std::string prefix = (dir / "n64").string();
  radixnet::save_network_tsv(net, prefix);
  const auto loaded =
      radixnet::load_network_tsv(prefix, 64, 5, -0.25f, net.ymax());

  data::SdgcInputOptions in_opt;
  in_opt.neurons = 64;
  in_opt.batch = 12;
  const auto input = data::make_sdgc_input(in_opt).features;
  const auto a = dnn::reference_forward(net, input);
  const auto b = dnn::reference_forward(loaded, input);
  EXPECT_FLOAT_EQ(dnn::DenseMatrix::max_abs_diff(a, b), 0.0f);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace snicit
