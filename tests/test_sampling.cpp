#include "snicit/sampling.hpp"

#include <gtest/gtest.h>

namespace snicit::core {
namespace {

TEST(Sampling, TakesFirstColumnsVerbatimWithoutDownsampling) {
  DenseMatrix y(6, 10);
  for (std::size_t j = 0; j < 10; ++j) {
    for (std::size_t r = 0; r < 6; ++r) {
      y.at(r, j) = static_cast<float>(j * 10 + r);
    }
  }
  const auto f = build_sample_matrix(y, 4, 0);
  EXPECT_EQ(f.rows(), 6u);
  EXPECT_EQ(f.cols(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    for (std::size_t r = 0; r < 6; ++r) {
      EXPECT_FLOAT_EQ(f.at(r, j), y.at(r, j));
    }
  }
}

TEST(Sampling, SumDownsamplingSegments) {
  DenseMatrix y(8, 2, 1.0f);  // every element 1
  const auto f = build_sample_matrix(y, 2, 4);
  EXPECT_EQ(f.rows(), 4u);
  EXPECT_EQ(f.cols(), 2u);
  for (std::size_t j = 0; j < 2; ++j) {
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_FLOAT_EQ(f.at(k, j), 2.0f);  // segments of 8/4 = 2 ones
    }
  }
}

TEST(Sampling, TailSegmentAbsorbsRemainder) {
  DenseMatrix y(10, 1, 1.0f);
  const auto f = build_sample_matrix(y, 1, 4);  // 10/4 -> segments 2,2,2,4
  EXPECT_EQ(f.rows(), 4u);
  EXPECT_FLOAT_EQ(f.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(f.at(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(f.at(2, 0), 2.0f);
  EXPECT_FLOAT_EQ(f.at(3, 0), 4.0f);
}

TEST(Sampling, SegmentSumsMatchManualComputation) {
  DenseMatrix y(6, 1);
  for (std::size_t r = 0; r < 6; ++r) {
    y.at(r, 0) = static_cast<float>(r + 1);  // 1..6
  }
  const auto f = build_sample_matrix(y, 1, 3);
  EXPECT_FLOAT_EQ(f.at(0, 0), 3.0f);   // 1+2
  EXPECT_FLOAT_EQ(f.at(1, 0), 7.0f);   // 3+4
  EXPECT_FLOAT_EQ(f.at(2, 0), 11.0f);  // 5+6
}

TEST(Sampling, SampleSizeClampedToBatch) {
  DenseMatrix y(4, 3, 1.0f);
  const auto f = build_sample_matrix(y, 32, 2);
  EXPECT_EQ(f.cols(), 3u);  // only 3 columns exist
}

TEST(Sampling, DownsampleDimGreaterThanRowsFallsBackToCopy) {
  DenseMatrix y(4, 2);
  y.at(3, 1) = 5.0f;
  const auto f = build_sample_matrix(y, 2, 16);
  EXPECT_EQ(f.rows(), 4u);
  EXPECT_FLOAT_EQ(f.at(3, 1), 5.0f);
}

TEST(Sampling, TotalMassPreserved) {
  // Sum downsampling must preserve each column's total sum.
  DenseMatrix y(37, 3);
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t r = 0; r < 37; ++r) {
      y.at(r, j) = static_cast<float>((r * 7 + j * 13) % 5);
    }
  }
  const auto f = build_sample_matrix(y, 3, 8);
  for (std::size_t j = 0; j < 3; ++j) {
    float col_sum = 0.0f;
    for (std::size_t r = 0; r < 37; ++r) col_sum += y.at(r, j);
    float ds_sum = 0.0f;
    for (std::size_t k = 0; k < 8; ++k) ds_sum += f.at(k, j);
    EXPECT_FLOAT_EQ(ds_sum, col_sum);
  }
}

}  // namespace
}  // namespace snicit::core
