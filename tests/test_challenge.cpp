#include "radixnet/challenge.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "baselines/xy2021.hpp"
#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "radixnet/radixnet.hpp"
#include "radixnet/sdgc_io.hpp"
#include "snicit/engine.hpp"

namespace snicit::radixnet {
namespace {

struct Workload {
  dnn::SparseDnn net;
  dnn::DenseMatrix input;
};

Workload make_workload() {
  RadixNetOptions opt;
  opt.neurons = 128;
  opt.layers = 12;
  opt.fanin = 16;
  opt.seed = 50;
  auto net = make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = 128;
  in_opt.batch = 32;
  in_opt.seed = 51;
  auto input = data::make_sdgc_input(in_opt).features;
  return {std::move(net), std::move(input)};
}

TEST(Challenge, SnicitSubmissionMatchesGolden) {
  auto wl = make_workload();
  core::SnicitParams params;
  params.threshold_layer = 6;
  core::SnicitEngine engine(params);
  const auto result = run_challenge(engine, wl.net, wl.input);
  EXPECT_TRUE(result.matches_golden);
  EXPECT_GT(result.runtime_ms, 0.0);
  EXPECT_GT(result.giga_edges_per_sec, 0.0);
  EXPECT_EQ(result.categories.size(), 32u);
  // Throughput arithmetic: edges = connections * batch.
  const double edges = static_cast<double>(wl.net.connections()) * 32.0;
  EXPECT_NEAR(result.giga_edges_per_sec,
              edges / (result.runtime_ms / 1000.0) / 1e9, 1e-9);
}

TEST(Challenge, WritesAndScoresSubmissionFile) {
  auto wl = make_workload();
  const auto dir = std::filesystem::temp_directory_path() /
                   "snicit_challenge_test";
  std::filesystem::create_directories(dir);
  const auto path = (dir / "categories.tsv").string();

  baselines::Xy2021Engine engine;
  const auto result = run_challenge(engine, wl.net, wl.input, path);
  ASSERT_TRUE(std::filesystem::exists(path));

  const auto golden = dnn::sdgc_categories(
      dnn::reference_forward(wl.net, wl.input), 1e-3f);
  EXPECT_DOUBLE_EQ(score_submission(path, golden), 1.0);
  EXPECT_EQ(result.active_inputs,
            static_cast<std::size_t>(
                std::count(golden.begin(), golden.end(), 1)));
  std::filesystem::remove_all(dir);
}

TEST(Challenge, DetectsWrongSubmission) {
  auto wl = make_workload();
  const auto golden = dnn::sdgc_categories(
      dnn::reference_forward(wl.net, wl.input), 1e-3f);
  const auto dir = std::filesystem::temp_directory_path() /
                   "snicit_challenge_bad";
  std::filesystem::create_directories(dir);
  const auto path = (dir / "bad.tsv").string();
  // A submission claiming the complement of the truth.
  std::vector<int> wrong(golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    wrong[i] = 1 - golden[i];
  }
  save_categories_tsv(wrong, path);
  EXPECT_DOUBLE_EQ(score_submission(path, golden), 0.0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace snicit::radixnet
