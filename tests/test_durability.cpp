// Durability and crash-recovery suite: CRC32C/SHA-256 against published
// vectors, the signal-driven ShutdownController, the write-ahead journal's
// corrupted-artifact corpus (torn tails, bit flips, bad magic), warm-state
// snapshots (round trip, bad CRC, truncation, version skew — every defect
// a typed cold-start fallback, never a crash), manifest sha256 pins, and
// the alloc_fail fault site that turns resource exhaustion into typed
// errors on the journal and snapshot paths.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "platform/checksum.hpp"
#include "platform/error.hpp"
#include "platform/fault_injection.hpp"
#include "platform/shutdown.hpp"
#include "radixnet/radixnet.hpp"
#include "radixnet/sdgc_io.hpp"
#include "serve/journal.hpp"
#include "serve/model_registry.hpp"
#include "snicit/snapshot.hpp"
#include "snicit/warm_cache.hpp"
#include "sparse/dense_matrix.hpp"

namespace {

using namespace snicit;
using platform::ErrorCode;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "snicit_durability_" + name;
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::size_t file_size(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in.good()) << path;
  return static_cast<std::size_t>(in.tellg());
}

// --- Checksums against published vectors ------------------------------

TEST(Crc32c, MatchesPublishedVectors) {
  // RFC 3720 appendix B.4 test vector for CRC32C (Castagnoli).
  const char digits[] = "123456789";
  EXPECT_EQ(platform::crc32c(digits, 9), 0xE3069283u);
  EXPECT_EQ(platform::crc32c(nullptr, 0), 0u);

  std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(platform::crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32c, IncrementalEqualsOneShot) {
  const std::string text = "the journal's records are CRC'd one by one";
  const auto whole = platform::crc32c(text.data(), text.size());
  for (std::size_t split = 0; split <= text.size(); ++split) {
    const auto first = platform::crc32c(text.data(), split);
    const auto both =
        platform::crc32c(text.data() + split, text.size() - split, first);
    EXPECT_EQ(both, whole) << "split at " << split;
  }
}

TEST(Sha256, MatchesPublishedVectors) {
  EXPECT_EQ(
      platform::sha256_hex(nullptr, 0),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  const char abc[] = "abc";
  EXPECT_EQ(
      platform::sha256_hex(abc, 3),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, StreamingUpdatesMatchOneShot) {
  std::string big;
  for (int i = 0; i < 5000; ++i) big += static_cast<char>('a' + (i % 26));
  const auto whole = platform::sha256_hex(big.data(), big.size());

  platform::Sha256 hasher;
  std::size_t at = 0;
  const std::size_t chunks[] = {1, 63, 64, 65, 1000, big.size()};
  for (const std::size_t chunk : chunks) {
    const std::size_t take = std::min(chunk, big.size() - at);
    hasher.update(big.data() + at, take);
    at += take;
    if (at >= big.size()) break;
  }
  if (at < big.size()) hasher.update(big.data() + at, big.size() - at);
  EXPECT_EQ(hasher.hex(), whole);
}

TEST(Sha256, FileDigestMatchesBufferDigest) {
  const std::string path = temp_path("sha_file.bin");
  std::vector<std::uint8_t> bytes(100000);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  write_bytes(path, bytes);
  const auto from_file = platform::sha256_file(path);
  ASSERT_TRUE(from_file.ok());
  EXPECT_EQ(from_file.value(),
            platform::sha256_hex(bytes.data(), bytes.size()));

  const auto missing = platform::sha256_file(temp_path("no_such_file"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::kBadModelFile);
}

// --- Shutdown controller ----------------------------------------------

TEST(ShutdownController, FirstSignalWinsAndResetRearms) {
  platform::ShutdownController controller;
  EXPECT_FALSE(controller.requested());
  EXPECT_EQ(controller.signal_number(), 0);
  controller.request(SIGTERM);
  EXPECT_TRUE(controller.requested());
  EXPECT_EQ(controller.signal_number(), SIGTERM);
  controller.request(SIGINT);  // second signal does not overwrite
  EXPECT_EQ(controller.signal_number(), SIGTERM);
  controller.reset();
  EXPECT_FALSE(controller.requested());
  controller.request(SIGINT);
  EXPECT_EQ(controller.signal_number(), SIGINT);
}

TEST(ShutdownController, InstalledHandlerCatchesARealSignal) {
  auto& global = platform::ShutdownController::global();
  global.reset();
  ASSERT_TRUE(global.install());
  EXPECT_FALSE(global.requested());
  std::raise(SIGTERM);
  EXPECT_TRUE(global.requested());
  EXPECT_EQ(global.signal_number(), SIGTERM);
  global.reset();
}

// --- Journal: round trip and the corrupted-artifact corpus ------------

serve::JournalAdmit make_admit(std::uint64_t id, bool with_features) {
  serve::JournalAdmit admit;
  admit.id = id;
  admit.tenant = id % 2 == 0 ? "" : "tenant-b";
  admit.sample = id * 3;
  admit.priority = id % 3 == 0 ? serve::Priority::kCritical
                               : serve::Priority::kStandard;
  admit.arrive_ms = 0.25 * static_cast<double>(id);
  admit.deadline_ms = id % 2 == 0 ? 0.0 : 7.5;
  if (with_features) {
    admit.features = {static_cast<float>(id), 0.5f, -1.25f};
  }
  return admit;
}

void expect_admits_equal(const serve::JournalAdmit& a,
                         const serve::JournalAdmit& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.tenant, b.tenant);
  EXPECT_EQ(a.sample, b.sample);
  EXPECT_EQ(a.priority, b.priority);
  EXPECT_DOUBLE_EQ(a.arrive_ms, b.arrive_ms);
  EXPECT_DOUBLE_EQ(a.deadline_ms, b.deadline_ms);
  EXPECT_EQ(a.features, b.features);
}

TEST(Journal, RoundTripsAdmitsAndCompletes) {
  const std::string path = temp_path("roundtrip.journal");
  std::vector<serve::JournalAdmit> admits;
  {
    auto writer = serve::JournalWriter::open(path);
    ASSERT_TRUE(writer.ok()) << writer.error().message;
    for (std::uint64_t id = 0; id < 6; ++id) {
      admits.push_back(make_admit(id, id % 2 == 1));
      ASSERT_TRUE(writer.value()->append_admit(admits.back()).ok());
    }
    serve::JournalComplete complete;
    complete.id = 2;
    complete.code = ErrorCode::kOk;
    complete.output_digest = 0xDEADBEEFCAFEF00Dull;
    ASSERT_TRUE(writer.value()->append_complete(complete).ok());
    complete.id = 3;
    complete.code = ErrorCode::kTimeout;
    complete.output_digest = 0;
    ASSERT_TRUE(writer.value()->append_complete(complete).ok());
    writer.value()->close();
  }
  const auto contents = serve::read_journal(path);
  ASSERT_TRUE(contents.ok()) << contents.error().message;
  EXPECT_FALSE(contents.value().truncated_tail);
  ASSERT_EQ(contents.value().admits.size(), admits.size());
  for (std::size_t i = 0; i < admits.size(); ++i) {
    expect_admits_equal(contents.value().admits[i], admits[i]);
  }
  ASSERT_EQ(contents.value().completes.size(), 2u);
  EXPECT_EQ(contents.value().completes[0].id, 2u);
  EXPECT_EQ(contents.value().completes[0].code, ErrorCode::kOk);
  EXPECT_EQ(contents.value().completes[0].output_digest,
            0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(contents.value().completes[1].code, ErrorCode::kTimeout);
}

TEST(Journal, TornTailIsTruncatedNotFatal) {
  const std::string path = temp_path("torn.journal");
  {
    auto writer = serve::JournalWriter::open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->append_admit(make_admit(0, true)).ok());
    ASSERT_TRUE(writer.value()->append_admit(make_admit(1, true)).ok());
    writer.value()->close();
  }
  // A SIGKILL mid-append leaves a partial record: simulate with 3 stray
  // bytes (a torn header).
  auto bytes = read_bytes(path);
  const auto intact = bytes.size();
  bytes.push_back(0x21);
  bytes.push_back(0x00);
  bytes.push_back(0x00);
  write_bytes(path, bytes);

  auto contents = serve::read_journal(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents.value().truncated_tail);
  EXPECT_EQ(contents.value().admits.size(), 2u);

  // A torn payload (full header, half the payload) truncates the same
  // way: recover the valid prefix, report the tail.
  bytes.resize(intact);
  write_bytes(path, bytes);
  {
    auto writer = serve::JournalWriter::open(temp_path("extra.journal"));
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->append_admit(make_admit(2, true)).ok());
    writer.value()->close();
  }
  const auto extra = read_bytes(temp_path("extra.journal"));
  // Append record 2's header + a few payload bytes only (skip the magic).
  bytes.insert(bytes.end(), extra.begin() + 8, extra.begin() + 8 + 12);
  write_bytes(path, bytes);
  contents = serve::read_journal(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents.value().truncated_tail);
  EXPECT_EQ(contents.value().admits.size(), 2u);
  EXPECT_FALSE(contents.value().truncation_reason.empty());
}

TEST(Journal, BitFlippedRecordLosesSuffixNotPrefix) {
  const std::string path = temp_path("bitflip.journal");
  std::size_t after_first = 0;
  {
    auto writer = serve::JournalWriter::open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->append_admit(make_admit(0, true)).ok());
    after_first = file_size(path);
    ASSERT_TRUE(writer.value()->append_admit(make_admit(1, true)).ok());
    ASSERT_TRUE(writer.value()->append_admit(make_admit(2, true)).ok());
    writer.value()->close();
  }
  auto bytes = read_bytes(path);
  // Flip one bit inside record 1's payload: its CRC now disagrees, so it
  // and everything after it are dropped; record 0 survives untouched.
  bytes[after_first + 9] ^= 0x40;
  write_bytes(path, bytes);

  const auto contents = serve::read_journal(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents.value().truncated_tail);
  EXPECT_NE(contents.value().truncation_reason.find("crc"),
            std::string::npos)
      << contents.value().truncation_reason;
  ASSERT_EQ(contents.value().admits.size(), 1u);
  expect_admits_equal(contents.value().admits[0], make_admit(0, true));
}

TEST(Journal, BadMagicAndMissingFileAreHardErrors) {
  const std::string path = temp_path("notajournal.bin");
  write_bytes(path, {'N', 'O', 'T', 'A', 'J', 'R', 'N', 'L', 1, 2, 3});
  const auto contents = serve::read_journal(path);
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.error().code, ErrorCode::kBadModelFile);

  const auto missing = serve::read_journal(temp_path("absent.journal"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::kBadModelFile);
}

TEST(Journal, FsyncPolicyParses) {
  EXPECT_TRUE(serve::parse_fsync_policy("none").ok());
  EXPECT_TRUE(serve::parse_fsync_policy("always").ok());
  const auto bad = serve::parse_fsync_policy("sometimes");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kBadInput);
}

// --- alloc_fail: typed resource exhaustion on durability paths --------

class AllocFailTest : public ::testing::Test {
 protected:
  void TearDown() override {
    platform::fault::FaultRegistry::global().clear();
  }
};

TEST_F(AllocFailTest, JournalAppendReturnsTypedResourceExhaustion) {
  auto& registry = platform::fault::FaultRegistry::global();
  ASSERT_TRUE(registry.configure("alloc_fail:1.0", 7).ok());
  auto writer = serve::JournalWriter::open(temp_path("allocfail.journal"));
  ASSERT_TRUE(writer.ok());
  const auto appended = writer.value()->append_admit(make_admit(0, true));
  ASSERT_FALSE(appended.ok());
  EXPECT_EQ(appended.error().code, ErrorCode::kResourceExhausted);
  registry.clear();
  // Disarmed, the same writer appends fine: the failure was injected,
  // not a wedged fd.
  EXPECT_TRUE(writer.value()->append_admit(make_admit(1, true)).ok());
}

TEST_F(AllocFailTest, SnapshotSaveReturnsTypedResourceExhaustion) {
  auto& registry = platform::fault::FaultRegistry::global();
  ASSERT_TRUE(registry.configure("alloc_fail:1.0", 7).ok());
  core::WarmStateSnapshot state;
  state.threshold_layer = 4;
  state.centroids.reset(8, 2);
  const auto saved =
      core::save_warm_state(temp_path("allocfail.snap"), state);
  ASSERT_FALSE(saved.ok());
  EXPECT_EQ(saved.error().code, ErrorCode::kResourceExhausted);
}

// --- Warm-state snapshots: round trip and corpus ----------------------

core::WarmStateSnapshot sample_state() {
  core::WarmStateSnapshot state;
  state.threshold_layer = 4;
  state.centroids.reset(16, 3);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t r = 0; r < 16; ++r) {
      state.centroids.at(r, c) =
          static_cast<float>(r) * 0.25f - static_cast<float>(c);
    }
  }
  return state;
}

TEST(Snapshot, RoundTripsBitExactly) {
  const std::string path = temp_path("roundtrip.snap");
  const auto state = sample_state();
  ASSERT_TRUE(core::save_warm_state(path, state).ok());
  const auto loaded = core::load_warm_state(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded.value().threshold_layer, state.threshold_layer);
  ASSERT_EQ(loaded.value().centroids.rows(), state.centroids.rows());
  ASSERT_EQ(loaded.value().centroids.cols(), state.centroids.cols());
  EXPECT_EQ(std::memcmp(loaded.value().centroids.data(),
                        state.centroids.data(),
                        16 * 3 * sizeof(float)),
            0);
}

TEST(Snapshot, EmptyStateIsBadInput) {
  core::WarmStateSnapshot state;
  const auto saved = core::save_warm_state(temp_path("empty.snap"), state);
  ASSERT_FALSE(saved.ok());
  EXPECT_EQ(saved.error().code, ErrorCode::kBadInput);
}

TEST(Snapshot, CorruptionCorpusIsTypedNeverFatal) {
  const std::string path = temp_path("corpus.snap");
  ASSERT_TRUE(core::save_warm_state(path, sample_state()).ok());
  const auto pristine = read_bytes(path);

  // Bit flip in the payload: CRC mismatch.
  auto flipped = pristine;
  flipped[flipped.size() / 2] ^= 0x01;
  write_bytes(path, flipped);
  auto loaded = core::load_warm_state(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kBadModelFile);
  EXPECT_NE(loaded.error().message.find("checksum"), std::string::npos);

  // Truncation (the torn-write crash artifact).
  auto truncated = pristine;
  truncated.resize(truncated.size() - 7);
  write_bytes(path, truncated);
  loaded = core::load_warm_state(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kBadModelFile);

  // Wrong magic.
  auto wrong_magic = pristine;
  wrong_magic[0] = 'X';
  write_bytes(path, wrong_magic);
  loaded = core::load_warm_state(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kBadModelFile);

  // Unsupported version with a *valid* CRC: the version gate itself.
  auto versioned = pristine;
  std::uint32_t bogus_version = 9;
  std::memcpy(versioned.data() + 8, &bogus_version, 4);
  const std::uint32_t crc =
      platform::crc32c(versioned.data() + 8, versioned.size() - 12);
  std::memcpy(versioned.data() + versioned.size() - 4, &crc, 4);
  write_bytes(path, versioned);
  loaded = core::load_warm_state(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kBadModelFile);
  EXPECT_NE(loaded.error().message.find("version"), std::string::npos);

  // Missing file.
  loaded = core::load_warm_state(temp_path("no_such.snap"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kBadModelFile);
}

TEST(WarmState, EngineSaveRestoreKeepsServingBitIdentical) {
  radixnet::RadixNetOptions opt;
  opt.neurons = 64;
  opt.layers = 8;
  opt.seed = 11;
  const auto net = radixnet::make_radixnet(opt);
  net.ensure_csc();
  dnn::DenseMatrix batch(64, 12);
  for (std::size_t j = 0; j < batch.cols(); ++j) {
    for (std::size_t r = 0; r < 8; ++r) {
      batch.at((j * 5 + r * 3) % 64, j) = 1.0f;
    }
  }
  core::SnicitParams params;
  params.threshold_layer = 4;
  params.sample_size = 8;
  params.downsample_dim = 8;

  core::WarmSnicitEngine first(params);
  EXPECT_FALSE(first.warmed());
  const auto save_unwarmed = first.save_state(temp_path("unwarmed.snap"));
  ASSERT_FALSE(save_unwarmed.ok());
  EXPECT_EQ(save_unwarmed.error().code, ErrorCode::kBadInput);

  (void)first.run(net, batch);  // cold run establishes the cache
  ASSERT_TRUE(first.warmed());
  const auto warm_output = first.run(net, batch).output;
  const std::string path = temp_path("engine.snap");
  ASSERT_TRUE(first.save_state(path).ok());

  // A restarted server: fresh engine, restored cache, same answers.
  core::WarmSnicitEngine second(params);
  const auto restored = second.restore_state(path, 64);
  ASSERT_TRUE(restored.ok()) << restored.error().message;
  ASSERT_TRUE(second.warmed());
  EXPECT_EQ(second.cache().size(), first.cache().size());
  const auto replayed_output = second.run(net, batch).output;
  ASSERT_EQ(replayed_output.cols(), warm_output.cols());
  EXPECT_EQ(std::memcmp(replayed_output.data(), warm_output.data(),
                        replayed_output.rows() * replayed_output.cols() *
                            sizeof(float)),
            0);
}

TEST(WarmState, StaleSnapshotsColdStartWithTypedErrors) {
  const std::string path = temp_path("stale.snap");
  ASSERT_TRUE(core::save_warm_state(path, sample_state()).ok());

  core::SnicitParams params;
  params.threshold_layer = 4;
  core::WarmSnicitEngine engine(params);

  // Wrong neuron count: snapshot has 16 rows, network expects 64.
  auto restored = engine.restore_state(path, 64);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.error().code, ErrorCode::kBadModelFile);
  EXPECT_FALSE(engine.warmed());

  // Wrong threshold layer: snapshot pinned t=4, engine pins t=3.
  core::SnicitParams other = params;
  other.threshold_layer = 3;
  core::WarmSnicitEngine mismatched(other);
  restored = mismatched.restore_state(path, 16);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.error().code, ErrorCode::kBadModelFile);
  EXPECT_FALSE(mismatched.warmed());

  // Matching expectations restore fine.
  restored = engine.restore_state(path, 16);
  ASSERT_TRUE(restored.ok()) << restored.error().message;
  EXPECT_TRUE(engine.warmed());
}

// --- Manifest sha256 pins ---------------------------------------------

TEST(ManifestSha, ParserValidatesPins) {
  const std::string good_pin(64, 'a');
  const auto parse = [](const std::string& models_json) {
    return serve::ModelRegistry::parse_manifest_text(
        "{\"models\": [" + models_json + "]}");
  };
  // Pins require a net prefix.
  auto specs = parse(R"({"id": "m", "layers": 1, "sha256": [")" +
                     good_pin + R"("]})");
  ASSERT_FALSE(specs.ok());
  EXPECT_NE(specs.error().message.find("requires 'net'"),
            std::string::npos);
  // Count must match layers.
  specs = parse(R"({"id": "m", "net": "p", "layers": 2, "sha256": [")" +
                good_pin + R"("]})");
  ASSERT_FALSE(specs.ok());
  // 64 hex chars, not arbitrary strings.
  specs = parse(
      R"({"id": "m", "net": "p", "layers": 1, "sha256": ["nothex"]})");
  ASSERT_FALSE(specs.ok());
  // Uppercase digests normalize to lowercase.
  std::string upper(64, 'A');
  specs = parse(R"({"id": "m", "net": "p", "layers": 1, "sha256": [")" +
                upper + R"("]})");
  ASSERT_TRUE(specs.ok()) << specs.error().message;
  EXPECT_EQ(specs.value()[0].sha256[0], good_pin);
}

TEST(ManifestSha, VerifyArtifactsCatchesTamperedWeights) {
  radixnet::RadixNetOptions opt;
  opt.neurons = 32;
  opt.layers = 2;
  opt.seed = 5;
  const auto net = radixnet::make_radixnet(opt);
  const std::string prefix = temp_path("pinned");
  radixnet::save_network_tsv(net, prefix);

  serve::ModelSpec spec;
  spec.id = "pinned";
  spec.engine = "reference";
  spec.neurons = 32;
  spec.layers = 2;
  spec.net_prefix = prefix;
  for (int layer = 1; layer <= 2; ++layer) {
    const auto digest = platform::sha256_file(
        prefix + "-l" + std::to_string(layer) + ".tsv");
    ASSERT_TRUE(digest.ok());
    spec.sha256.push_back(digest.value());
  }

  const auto verified = serve::ModelRegistry::verify_artifacts(spec);
  ASSERT_TRUE(verified.ok()) << verified.error().message;
  EXPECT_EQ(verified.value(), 2u);

  // Registry prepare() runs the same gate: a pinned model loads...
  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.add(spec).ok());

  // ...until a weight file is tampered with.
  {
    std::ofstream tamper(prefix + "-l2.tsv", std::ios::app);
    tamper << "1\t1\t0.125\n";
  }
  const auto tampered = serve::ModelRegistry::verify_artifacts(spec);
  ASSERT_FALSE(tampered.ok());
  EXPECT_EQ(tampered.error().code, ErrorCode::kBadModelFile);
  EXPECT_NE(tampered.error().message.find("sha256 mismatch"),
            std::string::npos);
  // Hot swap goes through prepare(), so the tampered artifact cannot be
  // swapped in either.
  const auto swapped = registry.swap(spec);
  ASSERT_FALSE(swapped.ok());
  EXPECT_EQ(swapped.error().code, ErrorCode::kBadModelFile);

  // A missing file is the same typed rejection.
  std::remove((prefix + "-l2.tsv").c_str());
  const auto missing = serve::ModelRegistry::verify_artifacts(spec);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::kBadModelFile);

  // Pin-count / prefix misuse are usage errors, not integrity errors.
  serve::ModelSpec misshapen = spec;
  misshapen.sha256.pop_back();
  EXPECT_EQ(serve::ModelRegistry::verify_artifacts(misshapen).error().code,
            ErrorCode::kBadInput);
  serve::ModelSpec no_net = spec;
  no_net.net_prefix.clear();
  EXPECT_EQ(serve::ModelRegistry::verify_artifacts(no_net).error().code,
            ErrorCode::kBadInput);
}

}  // namespace
