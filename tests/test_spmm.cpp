#include "sparse/spmm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "platform/rng.hpp"
#include "sparse/coo.hpp"

namespace snicit::sparse {
namespace {

/// Dense reference multiply: out = W * y.
DenseMatrix dense_spmm(const CsrMatrix& w, const DenseMatrix& y) {
  DenseMatrix out(static_cast<std::size_t>(w.rows()), y.cols());
  for (std::size_t j = 0; j < y.cols(); ++j) {
    for (Index i = 0; i < w.rows(); ++i) {
      const auto cols = w.row_cols(i);
      const auto vals = w.row_vals(i);
      float acc = 0.0f;
      for (std::size_t k = 0; k < cols.size(); ++k) {
        acc += vals[k] * y.at(static_cast<std::size_t>(cols[k]), j);
      }
      out.at(static_cast<std::size_t>(i), j) = acc;
    }
  }
  return out;
}

CsrMatrix random_weights(Index rows, Index cols, double density,
                         std::uint64_t seed) {
  platform::Rng rng(seed);
  CooMatrix coo(rows, cols);
  for (Index r = 0; r < rows; ++r) {
    for (Index c = 0; c < cols; ++c) {
      if (rng.next_bool(density)) {
        coo.add(r, c, rng.uniform(-1.0f, 1.0f));
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

DenseMatrix random_activations(std::size_t rows, std::size_t cols,
                               double density, std::uint64_t seed) {
  platform::Rng rng(seed);
  DenseMatrix y(rows, cols);
  for (std::size_t j = 0; j < cols; ++j) {
    for (std::size_t r = 0; r < rows; ++r) {
      if (rng.next_bool(density)) {
        y.at(r, j) = rng.uniform(0.0f, 2.0f);
      }
    }
  }
  return y;
}

TEST(SpmmGather, MatchesDenseReference) {
  const auto w = random_weights(24, 32, 0.2, 1);
  const auto y = random_activations(32, 10, 0.8, 2);
  DenseMatrix out(24, 10);
  spmm_gather(w, y, out);
  EXPECT_LE(DenseMatrix::max_abs_diff(out, dense_spmm(w, y)), 1e-5f);
}

TEST(SpmmScatter, MatchesGatherBitwiseOnSparseInputs) {
  // Scatter accumulates in input order == sorted column order, which is
  // not the same float order as gather, so compare with tolerance; but
  // with each output row touched by <= a few products the results are
  // numerically tight.
  const auto w = random_weights(40, 40, 0.1, 3);
  const auto y = random_activations(40, 8, 0.3, 4);
  DenseMatrix a(40, 8);
  DenseMatrix b(40, 8);
  spmm_gather(w, y, a);
  spmm_scatter(CscMatrix::from_csr(w), y, b);
  EXPECT_LE(DenseMatrix::max_abs_diff(a, b), 1e-4f);
}

TEST(SpmmScatter, AllZeroInputGivesZeroOutput) {
  const auto w = random_weights(16, 16, 0.3, 5);
  DenseMatrix y(16, 4);  // all zeros
  DenseMatrix out(16, 4, 99.0f);
  spmm_scatter(CscMatrix::from_csr(w), y, out);
  EXPECT_EQ(out.count_nonzeros(), 0u);  // scatter zero-fills its columns
}

TEST(SpmmTiled, MatchesGatherAcrossTileSizes) {
  const auto w = random_weights(30, 30, 0.25, 6);
  const auto y = random_activations(30, 37, 0.9, 7);  // non-multiple of tile
  DenseMatrix ref(30, 37);
  spmm_gather(w, y, ref);
  for (std::size_t tile : {1u, 3u, 16u, 64u}) {
    DenseMatrix out(30, 37);
    spmm_tiled(w, y, out, tile);
    EXPECT_LE(DenseMatrix::max_abs_diff(out, ref), 1e-5f)
        << "tile=" << tile;
  }
}

TEST(SpmmGatherCols, OnlyTouchesListedColumns) {
  const auto w = random_weights(12, 12, 0.4, 8);
  const auto y = random_activations(12, 6, 0.7, 9);
  DenseMatrix out(12, 6, -7.0f);
  const std::vector<Index> cols = {1, 4};
  spmm_gather_cols(w, y, cols, out);
  const auto ref = dense_spmm(w, y);
  for (std::size_t j = 0; j < 6; ++j) {
    const bool listed = (j == 1 || j == 4);
    for (std::size_t r = 0; r < 12; ++r) {
      if (listed) {
        EXPECT_NEAR(out.at(r, j), ref.at(r, j), 1e-5f);
      } else {
        EXPECT_FLOAT_EQ(out.at(r, j), -7.0f);  // untouched sentinel
      }
    }
  }
}

TEST(SpmmScatterCols, OnlyTouchesListedColumns) {
  const auto w = random_weights(12, 12, 0.4, 10);
  const auto y = random_activations(12, 6, 0.7, 11);
  DenseMatrix out(12, 6, -7.0f);
  const std::vector<Index> cols = {0, 5};
  spmm_scatter_cols(CscMatrix::from_csr(w), y, cols, out);
  const auto ref = dense_spmm(w, y);
  for (std::size_t j = 0; j < 6; ++j) {
    const bool listed = (j == 0 || j == 5);
    for (std::size_t r = 0; r < 12; ++r) {
      if (listed) {
        EXPECT_NEAR(out.at(r, j), ref.at(r, j), 1e-4f);
      } else {
        EXPECT_FLOAT_EQ(out.at(r, j), -7.0f);
      }
    }
  }
}

TEST(BiasActivation, VectorBiasClipsBothSides) {
  DenseMatrix y(3, 2);
  y.at(0, 0) = -5.0f;
  y.at(1, 0) = 10.0f;
  y.at(2, 0) = 50.0f;
  const std::vector<float> bias = {1.0f, -1.0f, 0.0f};
  apply_bias_activation(y, bias, 32.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);   // -5+1 clipped at 0
  EXPECT_FLOAT_EQ(y.at(1, 0), 9.0f);   // 10-1
  EXPECT_FLOAT_EQ(y.at(2, 0), 32.0f);  // 50 clipped at ymax
  EXPECT_FLOAT_EQ(y.at(0, 1), 1.0f);   // 0+1
}

TEST(BiasActivation, ScalarBiasEqualsVectorBias) {
  platform::Rng rng(12);
  DenseMatrix a(8, 5);
  for (std::size_t i = 0; i < 40; ++i) {
    a.data()[i] = rng.uniform(-2.0f, 2.0f);
  }
  DenseMatrix b = a;
  apply_bias_activation(a, -0.3f, 1.0f);
  const std::vector<float> bias(8, -0.3f);
  apply_bias_activation(b, bias, 1.0f);
  EXPECT_FLOAT_EQ(DenseMatrix::max_abs_diff(a, b), 0.0f);
}

TEST(DensityEstimate, ExactOnSmallMatrices) {
  DenseMatrix y(10, 3);
  y.at(0, 0) = 1.0f;
  y.at(5, 0) = 1.0f;  // col 0: 2/10
  // col 1 empty; col 2: 1/10
  y.at(9, 2) = 1.0f;
  const std::vector<Index> cols = {0, 1, 2};
  EXPECT_NEAR(estimate_column_density(y, cols), 0.1, 1e-9);
}

TEST(DensityEstimate, EmptyColumnListIsZero) {
  DenseMatrix y(4, 4, 1.0f);
  EXPECT_DOUBLE_EQ(estimate_column_density(y, {}), 0.0);
}

// Property sweep: all kernel variants agree on random (shape, density)
// combinations — the invariant behind XY-2021's free kernel choice.
class KernelEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, double, double>> {
};

TEST_P(KernelEquivalence, AllVariantsAgree) {
  const auto [n, b, w_density, y_density] = GetParam();
  const auto w = random_weights(n, n, w_density, 100 + n);
  const auto y = random_activations(static_cast<std::size_t>(n),
                                    static_cast<std::size_t>(b), y_density,
                                    200 + b);
  DenseMatrix g(n, b);
  DenseMatrix s(n, b);
  DenseMatrix t(n, b);
  spmm_gather(w, y, g);
  spmm_scatter(CscMatrix::from_csr(w), y, s);
  spmm_tiled(w, y, t, 8);
  EXPECT_LE(DenseMatrix::max_abs_diff(g, s), 1e-3f);
  EXPECT_LE(DenseMatrix::max_abs_diff(g, t), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelEquivalence,
    ::testing::Combine(::testing::Values(8, 64, 128),
                       ::testing::Values(1, 17, 64),
                       ::testing::Values(0.05, 0.3),
                       ::testing::Values(0.0, 0.2, 1.0)));

}  // namespace
}  // namespace snicit::sparse
