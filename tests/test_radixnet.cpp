#include "radixnet/radixnet.hpp"

#include <gtest/gtest.h>

#include <set>

namespace snicit::radixnet {
namespace {

TEST(Table1Bias, MatchesPaperConstants) {
  EXPECT_NEAR(table1_bias(1024), -0.30f, 1e-6);
  EXPECT_NEAR(table1_bias(4096), -0.35f, 1e-6);
  EXPECT_NEAR(table1_bias(16384), -0.40f, 1e-6);
  EXPECT_NEAR(table1_bias(65536), -0.45f, 1e-6);
}

TEST(SdgcStatsTest, ConnectionCountsMatchTable1) {
  EXPECT_EQ(sdgc_stats(1024, 120).connections, 3932160LL);
  EXPECT_EQ(sdgc_stats(1024, 480).connections, 15728640LL);
  EXPECT_EQ(sdgc_stats(4096, 1920).connections, 251658240LL);
  EXPECT_EQ(sdgc_stats(16384, 480).connections, 251658240LL);
  EXPECT_EQ(sdgc_stats(65536, 1920).connections, 4026531840LL);
}

TEST(SdgcStatsTest, DensityMatchesTable1) {
  EXPECT_NEAR(sdgc_stats(1024, 120).density, 0.03125, 1e-9);   // ~0.03
  EXPECT_NEAR(sdgc_stats(4096, 120).density, 0.0078125, 1e-9); // ~0.008
  EXPECT_NEAR(sdgc_stats(65536, 120).density, 0.00048828125, 1e-9);
}

TEST(MakeRadixnet, ShapeAndFaninExact) {
  RadixNetOptions opt;
  opt.neurons = 256;
  opt.layers = 6;
  opt.fanin = 8;
  const auto net = make_radixnet(opt);
  EXPECT_EQ(net.neurons(), 256);
  EXPECT_EQ(net.num_layers(), 6u);
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const auto& w = net.weight(l);
    EXPECT_TRUE(w.is_valid());
    EXPECT_EQ(w.nnz(), 256 * 8);  // exactly fanin edges per neuron
    for (Index r = 0; r < w.rows(); ++r) {
      EXPECT_EQ(w.row_cols(r).size(), 8u) << "layer " << l << " row " << r;
    }
  }
}

TEST(MakeRadixnet, UsesTable1BiasByDefault) {
  RadixNetOptions opt;
  opt.neurons = 1024;
  opt.layers = 2;
  const auto net = make_radixnet(opt);
  EXPECT_TRUE(net.bias_is_constant(0));
  EXPECT_NEAR(net.constant_bias(0), -0.30f, 1e-6);
}

TEST(MakeRadixnet, ExplicitBiasOverrides) {
  RadixNetOptions opt;
  opt.neurons = 128;
  opt.layers = 2;
  opt.fanin = 4;
  opt.bias = -0.1f;
  const auto net = make_radixnet(opt);
  EXPECT_FLOAT_EQ(net.constant_bias(1), -0.1f);
}

TEST(MakeRadixnet, DeterministicForSeed) {
  RadixNetOptions opt;
  opt.neurons = 64;
  opt.layers = 3;
  opt.fanin = 4;
  const auto a = make_radixnet(opt);
  const auto b = make_radixnet(opt);
  for (std::size_t l = 0; l < 3; ++l) {
    EXPECT_EQ(a.weight(l).col_idx(), b.weight(l).col_idx());
    EXPECT_EQ(a.weight(l).values(), b.weight(l).values());
  }
  opt.seed = 43;
  const auto c = make_radixnet(opt);
  EXPECT_NE(a.weight(0).values(), c.weight(0).values());
}

TEST(MakeRadixnet, StridesVaryAcrossLayers) {
  // Butterfly strides must not leave the topology identical in every
  // layer: distinct column patterns should appear within a stride cycle.
  RadixNetOptions opt;
  opt.neurons = 64;
  opt.layers = 4;
  opt.fanin = 8;
  opt.seed = 5;
  const auto net = make_radixnet(opt);
  std::set<std::vector<Index>> patterns;
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const auto row = net.weight(l).row_cols(0);
    patterns.insert(std::vector<Index>(row.begin(), row.end()));
  }
  EXPECT_GE(patterns.size(), 2u);
}

TEST(MakeRadixnet, WeightsWithinConfiguredRange) {
  RadixNetOptions opt;
  opt.neurons = 128;
  opt.layers = 2;
  opt.fanin = 8;
  opt.w_lo = 0.05f;
  opt.w_hi = 0.10f;
  const auto net = make_radixnet(opt);
  for (float v : net.weight(0).values()) {
    EXPECT_GE(std::abs(v), 0.05f - 1e-6f);
    EXPECT_LE(std::abs(v), 0.10f + 1e-6f);
  }
}

TEST(MakeRadixnet, NegativeFractionRoughlyMatchesNegProb) {
  RadixNetOptions opt;
  opt.neurons = 1024;
  opt.layers = 1;
  opt.neg_prob = 0.30;
  const auto net = make_radixnet(opt);
  std::size_t neg = 0;
  for (float v : net.weight(0).values()) {
    if (v < 0.0f) ++neg;
  }
  const double frac =
      static_cast<double>(neg) / static_cast<double>(net.weight(0).nnz());
  EXPECT_NEAR(frac, 0.30, 0.03);
}

}  // namespace
}  // namespace snicit::radixnet
