// Determinism/property suite for the request-level serving front end:
// whatever the arrival order, batch timeout, worker count, or packer,
// every accepted request gets exactly one result, and each result is
// bit-identical to the serial reference on the same sample. The SNICIT
// engine's outputs are batch-composition dependent (centroid choice
// couples columns), so its contract is checked per *formed* batch: each
// engine batch the batcher assembled, replayed serially through
// stream_inference, must reproduce the served outputs bit-exactly —
// the deterministic reassembly contract inherited from the parallel
// stream executor. Fault drills (worker_throw) must preserve both.
#include "serve/dynamic_batcher.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "platform/error.hpp"
#include "platform/fault_injection.hpp"
#include "platform/rng.hpp"
#include "platform/timer.hpp"
#include "radixnet/radixnet.hpp"
#include "serve/request_queue.hpp"
#include "snicit/engine.hpp"
#include "snicit/stream.hpp"

namespace snicit::serve {
namespace {

using platform::ErrorCode;

struct Workload {
  dnn::SparseDnn net;
  dnn::DenseMatrix input;
};

Workload make_workload(std::size_t samples, std::uint64_t seed = 3,
                       sparse::Index neurons = 96, int layers = 10) {
  radixnet::RadixNetOptions opt;
  opt.neurons = neurons;
  opt.layers = layers;
  opt.fanin = 8;
  opt.seed = seed;
  auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = static_cast<std::size_t>(neurons);
  in_opt.batch = samples;
  in_opt.seed = seed + 1;
  auto input = data::make_sdgc_input(in_opt).features;
  return {std::move(net), std::move(input)};
}

std::vector<float> column_of(const dnn::DenseMatrix& m, std::size_t j) {
  return {m.col(j), m.col(j) + m.rows()};
}

bool bit_identical(const std::vector<float>& a, const float* b,
                   std::size_t n) {
  return a.size() == n &&
         std::memcmp(a.data(), b, n * sizeof(float)) == 0;
}

/// Arrival orders fuzzed over: identity, reversed, and seeded shuffles.
std::vector<std::size_t> arrival_order(std::size_t n, int variant) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (variant == 1) std::reverse(order.begin(), order.end());
  if (variant >= 2) {
    platform::Rng rng(0xa11e5 + static_cast<std::uint64_t>(variant));
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
  }
  return order;
}

/// Serves the workload's columns in `order` and returns the finished
/// report. Request id i is the i-th *submission*, i.e. column order[i].
ServeReport serve_columns(dnn::InferenceEngine& engine,
                          const Workload& wl,
                          const std::vector<std::size_t>& order,
                          const ServeOptions& options,
                          double deadline_ms = 0.0) {
  DynamicBatcher batcher(engine, wl.net, options);
  for (const std::size_t j : order) {
    const auto id = batcher.submit(column_of(wl.input, j), deadline_ms);
    EXPECT_TRUE(id.ok());
  }
  return batcher.finish();
}

// --- Column-independent engine: per-request bit-identity to the serial
// reference across the whole fuzz grid -------------------------------

class BatcherDeterminism
    : public ::testing::TestWithParam<
          std::tuple<int, int, const char*, double>> {};

TEST_P(BatcherDeterminism, BitIdenticalToSerialReference) {
  const int order_variant = std::get<0>(GetParam());
  const auto workers = static_cast<std::size_t>(std::get<1>(GetParam()));
  const std::string packer = std::get<2>(GetParam());
  const double timeout_ms = std::get<3>(GetParam());

  const std::size_t samples = 57;  // 57 % 16 == 9: a partial tail batch
  auto wl = make_workload(samples);
  wl.net.ensure_csc();

  // Serial oracle: one stream_inference pass over the columns in their
  // original order. The reference engine treats columns independently,
  // so per-column outputs are comparable whatever batch they rode in.
  dnn::ReferenceEngine serial_engine;
  const auto serial =
      core::stream_inference(serial_engine, wl.net, wl.input, {});

  const auto order = arrival_order(samples, order_variant);
  ServeOptions opt;
  opt.max_batch = 16;
  opt.batch_timeout_ms = timeout_ms;
  opt.packer = packer;
  opt.workers = workers;
  opt.queue_capacity = 8;  // exercise submit-side backpressure too
  dnn::ReferenceEngine engine;
  const auto report = serve_columns(engine, wl, order, opt);

  // No request dropped or duplicated: exactly one result per accepted
  // submit, ids dense from 0.
  ASSERT_EQ(report.requests, samples);
  ASSERT_EQ(report.results.size(), samples);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.failed_requests, 0u);
  EXPECT_EQ(report.timed_out_requests, 0u);
  std::size_t logged = 0;
  for (const auto& record : report.batch_log) {
    logged += record.request_ids.size();
    EXPECT_LE(record.request_ids.size(), opt.max_batch);
  }
  EXPECT_EQ(logged, samples);

  for (std::size_t i = 0; i < samples; ++i) {
    const auto& result = report.results[i];
    ASSERT_EQ(result.id, i);
    ASSERT_TRUE(result.ok()) << result.message;
    // Submission i carried column order[i].
    EXPECT_TRUE(bit_identical(result.output, serial.outputs.col(order[i]),
                              serial.outputs.rows()))
        << "request " << i << " (column " << order[i]
        << ") diverged from the serial reference";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, BatcherDeterminism,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),   // arrival orders
                       ::testing::Values(1, 3),         // worker counts
                       ::testing::Values("fifo", "similarity"),
                       ::testing::Values(0.0, 0.5)));   // batch timeouts

// --- SNICIT engine: deterministic reassembly per formed batch --------

TEST(BatcherSnicit, FormedBatchesReplayBitIdentically) {
  const std::size_t samples = 48;
  auto wl = make_workload(samples, /*seed=*/5);
  wl.net.ensure_csc();

  core::SnicitParams params;
  params.threshold_layer = 4;
  ServeOptions opt;
  opt.max_batch = 16;
  opt.packer = "similarity";
  opt.workers = 3;
  core::SnicitEngine engine(params);
  const auto report =
      serve_columns(engine, wl, arrival_order(samples, 2), opt);
  ASSERT_EQ(report.results.size(), samples);
  ASSERT_TRUE(report.complete());

  // Request id i is the i-th submission = column arrival_order[i].
  const auto order = arrival_order(samples, 2);
  for (const auto& record : report.batch_log) {
    dnn::DenseMatrix batch(wl.input.rows(), record.request_ids.size());
    for (std::size_t p = 0; p < record.request_ids.size(); ++p) {
      const std::size_t column = order[record.request_ids[p]];
      std::copy_n(wl.input.col(column), wl.input.rows(), batch.col(p));
    }
    // Serial replay of exactly this batch: stream_inference with a batch
    // size covering it runs the engine once on the same columns.
    core::SnicitEngine replay_engine(params);
    core::StreamOptions sopt;
    sopt.batch_size = record.request_ids.size();
    const auto replay =
        core::stream_inference(replay_engine, wl.net, batch, sopt);
    for (std::size_t p = 0; p < record.request_ids.size(); ++p) {
      const auto& result = report.results[record.request_ids[p]];
      ASSERT_TRUE(result.ok());
      EXPECT_TRUE(bit_identical(result.output, replay.outputs.col(p),
                                replay.outputs.rows()))
          << "request " << result.id << " in batch " << record.batch;
    }
  }
}

// --- Fault drill: worker_throw retries must not cost exactness -------

TEST(BatcherFaults, WorkerThrowRetriesStayBitIdentical) {
  auto& faults = platform::fault::FaultRegistry::global();
  ASSERT_TRUE(faults.configure("worker_throw:0.3", 7).ok());

  const std::size_t samples = 64;
  auto wl = make_workload(samples, /*seed=*/9);
  wl.net.ensure_csc();
  dnn::ReferenceEngine serial_engine;
  const auto serial =
      core::stream_inference(serial_engine, wl.net, wl.input, {});

  ServeOptions opt;
  opt.max_batch = 8;
  opt.packer = "fifo";
  opt.workers = 3;
  opt.max_attempts = 6;
  opt.retry_backoff_ms = 0.0;
  dnn::ReferenceEngine engine;
  const auto report =
      serve_columns(engine, wl, arrival_order(samples, 0), opt);
  faults.clear();

  ASSERT_EQ(report.results.size(), samples);
  EXPECT_TRUE(report.complete())
      << report.failed_requests << " failed / "
      << report.timed_out_requests << " timed out";
  EXPECT_GT(report.retries, 0u) << "drill armed but nothing retried";
  for (std::size_t i = 0; i < samples; ++i) {
    ASSERT_TRUE(report.results[i].ok()) << report.results[i].message;
    EXPECT_TRUE(bit_identical(report.results[i].output,
                              serial.outputs.col(i),
                              serial.outputs.rows()));
  }
}

TEST(BatcherFaults, ExhaustedRetriesFailOnlyTheirOwnRequests) {
  auto& faults = platform::fault::FaultRegistry::global();
  // Certain fault + one attempt: every pooled batch is lost, but the
  // server survives and every request gets a typed terminal result.
  ASSERT_TRUE(faults.configure("worker_throw:1.0", 7).ok());

  const std::size_t samples = 40;
  auto wl = make_workload(samples, /*seed=*/13);
  wl.net.ensure_csc();
  ServeOptions opt;
  opt.max_batch = 8;
  opt.workers = 3;
  opt.max_attempts = 1;
  opt.retry_backoff_ms = 0.0;
  dnn::ReferenceEngine engine;
  const auto report =
      serve_columns(engine, wl, arrival_order(samples, 0), opt);
  faults.clear();

  ASSERT_EQ(report.results.size(), samples);
  EXPECT_FALSE(report.complete());
  std::size_t failed = 0;
  for (const auto& result : report.results) {
    if (!result.ok()) {
      EXPECT_EQ(result.code, ErrorCode::kWorkerFault);
      EXPECT_TRUE(result.output.empty());
      failed += 1;
    }
  }
  EXPECT_EQ(failed, report.failed_requests);
  EXPECT_GT(failed, 0u);
}

// --- Deadlines, lifecycle, and input validation ----------------------

TEST(BatcherDeadlines, ExpiredBudgetTimesOutInsteadOfServing) {
  auto wl = make_workload(4);
  wl.net.ensure_csc();
  dnn::ReferenceEngine engine;
  ServeOptions opt;
  opt.max_batch = 4;
  opt.batch_timeout_ms = 20.0;
  DynamicBatcher batcher(engine, wl.net, opt);
  // A deadline of 100ns is always expired by the time the server thread
  // wakes and stamps the queue wait.
  const auto id = batcher.submit(column_of(wl.input, 0), /*deadline_ms=*/1e-4);
  ASSERT_TRUE(id.ok());
  const auto report = batcher.finish();
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_EQ(report.results[0].code, ErrorCode::kTimeout);
  EXPECT_EQ(report.timed_out_requests, 1u);
  EXPECT_FALSE(report.complete());
}

TEST(BatcherDeadlines, DeadlineExpiredExactlyAtSubmitIsTypedTimeout) {
  // Boundary regression: a deadline that has already expired by the time
  // the submit call returns (the smallest positive budget — any nonzero
  // queue age beats it) must produce the typed kTimeout result. It must
  // never ride an engine batch, and collecting it must not hang the
  // round's fill-wait loop on a zero-slack request.
  auto wl = make_workload(4);
  wl.net.ensure_csc();
  dnn::ReferenceEngine engine;
  ServeOptions opt;
  opt.max_batch = 4;
  DynamicBatcher batcher(engine, wl.net, opt, ManualDrive{});
  const auto id = batcher.submit(
      column_of(wl.input, 0),
      /*deadline_ms=*/std::numeric_limits<double>::min());
  ASSERT_TRUE(id.ok());
  // Manual drive with a generous fill window: the expired request must
  // come back immediately (zero slack caps the wait), as a result.
  EXPECT_TRUE(batcher.drive(/*wait_ms=*/50.0));
  EXPECT_EQ(batcher.completed(), 1u);
  const auto report = batcher.finish();
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_EQ(report.results[0].code, ErrorCode::kTimeout);
  EXPECT_TRUE(report.results[0].output.empty())
      << "expired request was served an engine slot";
  EXPECT_EQ(report.timed_out_requests, 1u);
  EXPECT_EQ(report.batches, 0u) << "expired request formed an engine batch";
}

TEST(BatcherLifecycle, SubmitAfterFinishIsQueueClosed) {
  auto wl = make_workload(4);
  wl.net.ensure_csc();
  dnn::ReferenceEngine engine;
  DynamicBatcher batcher(engine, wl.net, {});
  ASSERT_TRUE(batcher.submit(column_of(wl.input, 0)).ok());
  const auto report = batcher.finish();
  EXPECT_EQ(report.requests, 1u);
  const auto late = batcher.submit(column_of(wl.input, 1));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.code(), ErrorCode::kQueueClosed);
  // finish() is idempotent: the second call returns an empty report.
  EXPECT_EQ(batcher.finish().requests, 0u);
}

TEST(BatcherLifecycle, WrongFeatureLengthIsBadInput) {
  auto wl = make_workload(4);
  wl.net.ensure_csc();
  dnn::ReferenceEngine engine;
  DynamicBatcher batcher(engine, wl.net, {});
  const auto bad = batcher.submit(std::vector<float>(3, 1.0f));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), ErrorCode::kBadInput);
  EXPECT_EQ(batcher.finish().requests, 0u);
}

TEST(BatcherLifecycle, UnknownPackerIsBadInput) {
  auto wl = make_workload(4);
  dnn::ReferenceEngine engine;
  ServeOptions opt;
  opt.packer = "clairvoyant";
  EXPECT_THROW(DynamicBatcher(engine, wl.net, opt),
               platform::ErrorException);
}

// --- RequestQueue: deadline-aware collect and idempotent close -------

TEST(RequestQueue, CollectHonoursLimitAndArrivalOrder) {
  RequestQueue queue(16);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.submit(std::vector<float>(1, float(i))).ok());
  }
  const auto first = queue.collect(3, 0.0);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0].id, 0u);
  EXPECT_EQ(first[2].id, 2u);
  const auto rest = queue.collect(8, 0.0);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].id, 3u);
  EXPECT_EQ(queue.issued(), 5u);
}

TEST(RequestQueue, CloseIsIdempotentAndDrains) {
  RequestQueue queue(4);
  ASSERT_TRUE(queue.submit(std::vector<float>(1, 1.0f)).ok());
  queue.close();
  queue.close();  // double close must be harmless
  EXPECT_TRUE(queue.closed());
  const auto rejected = queue.submit(std::vector<float>(1, 2.0f));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), ErrorCode::kQueueClosed);
  EXPECT_EQ(queue.collect(4, 0.0).size(), 1u);  // drains the accepted one
  EXPECT_TRUE(queue.collect(4, 0.0).empty());   // exhausted forever
}

TEST(RequestQueue, ZeroSlackRequestDoesNotStallCollect) {
  // Boundary: a request whose deadline expired the instant it was
  // submitted has zero slack, which must cap the fill-wait at nothing —
  // collect returns it promptly for its typed timeout instead of
  // sleeping out the whole fill window (or hanging on a wait_until of
  // the past).
  RequestQueue queue(4);
  ASSERT_TRUE(queue
                  .submit(std::vector<float>(1, 1.0f),
                          std::numeric_limits<double>::min())
                  .ok());
  const platform::Stopwatch clock;
  const auto collected = queue.collect(4, /*wait_ms=*/250.0);
  EXPECT_LT(clock.elapsed_ms(), 200.0) << "zero-slack fill-wait stalled";
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_EQ(collected[0].id, 0u);
}

}  // namespace
}  // namespace snicit::serve
