// Lockdown suite for the multi-model registry: manifest parsing is
// strict and every failure is a typed Error (malformed JSON, schema
// violations, missing/duplicate ids, bad weight paths — never a crash or
// a half-loaded registry), and the mutation API (add / hot swap / remove)
// keeps the generation counter honest while old snapshots stay alive for
// readers that captured them.
#include "serve/model_registry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "platform/error.hpp"
#include "radixnet/radixnet.hpp"
#include "radixnet/sdgc_io.hpp"

namespace snicit::serve {
namespace {

using platform::ErrorCode;

std::string small_model_json(const std::string& id,
                             const std::string& engine = "reference") {
  return "{\"id\": \"" + id + "\", \"engine\": \"" + engine +
         "\", \"neurons\": 64, \"layers\": 4, \"fanin\": 8}";
}

std::string manifest_of(const std::vector<std::string>& entries) {
  std::string text = "{\"models\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) text += ", ";
    text += entries[i];
  }
  return text + "]}";
}

// --- parse_manifest_text: strict schema, typed failures ---------------

TEST(ManifestParse, ValidManifestRoundTripsEveryField) {
  const std::string text =
      "{\"models\": [{\"id\": \"prod\", \"engine\": \"snicit-warm\", "
      "\"neurons\": 128, \"layers\": 12, \"fanin\": 16, \"seed\": 9, "
      "\"bias\": -0.35, \"threshold\": 5, \"sample_size\": 8, "
      "\"downsample\": 4, \"prune\": 0.5}]}";
  const auto specs = ModelRegistry::parse_manifest_text(text);
  ASSERT_TRUE(specs.ok()) << specs.error().message;
  ASSERT_EQ(specs.value().size(), 1u);
  const ModelSpec& spec = specs.value()[0];
  EXPECT_EQ(spec.id, "prod");
  EXPECT_EQ(spec.engine, "snicit-warm");
  EXPECT_EQ(spec.neurons, 128);
  EXPECT_EQ(spec.layers, 12);
  EXPECT_EQ(spec.fanin, 16);
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_FLOAT_EQ(spec.bias, -0.35f);
  EXPECT_EQ(spec.threshold, 5);
  EXPECT_EQ(spec.sample_size, 8);
  EXPECT_EQ(spec.downsample, 4);
  EXPECT_FLOAT_EQ(spec.prune, 0.5f);
}

TEST(ManifestParse, DefaultsApplyWhenOnlyIdIsGiven) {
  const auto specs =
      ModelRegistry::parse_manifest_text("{\"models\": [{\"id\": \"m\"}]}");
  ASSERT_TRUE(specs.ok());
  const ModelSpec& spec = specs.value()[0];
  EXPECT_EQ(spec.engine, "snicit");
  EXPECT_EQ(spec.neurons, 1024);
  EXPECT_EQ(spec.layers, 48);
  EXPECT_TRUE(std::isnan(spec.bias));  // Table 1 bias by default
}

TEST(ManifestParse, EveryKnownEngineIsAccepted) {
  for (const auto& engine : ModelRegistry::known_engines()) {
    const auto specs = ModelRegistry::parse_manifest_text(
        manifest_of({small_model_json("m", engine)}));
    EXPECT_TRUE(specs.ok()) << engine << ": " << specs.error().message;
  }
}

TEST(ManifestParse, MalformedJsonIsTypedNotFatal) {
  for (const std::string text :
       {"", "not json", "{\"models\": [", "{\"models\": [{]}",
        "{\"models\": [{\"id\": \"a\"}]} trailing"}) {
    const auto specs = ModelRegistry::parse_manifest_text(text);
    ASSERT_FALSE(specs.ok()) << "accepted: " << text;
    EXPECT_EQ(specs.error().code, ErrorCode::kBadModelFile);
  }
}

TEST(ManifestParse, SchemaViolationsAreTyped) {
  const std::vector<std::string> bad = {
      "[]",                                     // top level not an object
      "{}",                                     // missing 'models'
      "{\"modls\": []}",                        // misspelt top-level key
      "{\"models\": {}}",                       // models not an array
      "{\"models\": []}",                       // no models at all
      "{\"models\": [42]}",                     // entry not an object
      "{\"models\": [{}]}",                     // missing id
      "{\"models\": [{\"id\": \"\"}]}",         // empty id
      "{\"models\": [{\"id\": 3}]}",            // id not a string
      "{\"models\": [{\"id\": \"a\", \"enginee\": \"snicit\"}]}",
      "{\"models\": [{\"id\": \"a\", \"engine\": \"gpt\"}]}",
      "{\"models\": [{\"id\": \"a\", \"neurons\": 2.5}]}",
      "{\"models\": [{\"id\": \"a\", \"neurons\": 0}]}",
      "{\"models\": [{\"id\": \"a\", \"layers\": \"ten\"}]}",
      "{\"models\": [{\"id\": \"a\", \"prune\": -1}]}",
      "{\"models\": [{\"id\": \"a\", \"neurons\": 8, \"fanin\": 9}]}",
  };
  for (const auto& text : bad) {
    const auto specs = ModelRegistry::parse_manifest_text(text);
    ASSERT_FALSE(specs.ok()) << "accepted: " << text;
    EXPECT_EQ(specs.error().code, ErrorCode::kBadModelFile) << text;
  }
}

TEST(ManifestParse, DuplicateIdsAreRejected) {
  const auto specs = ModelRegistry::parse_manifest_text(
      manifest_of({small_model_json("twin"), small_model_json("twin")}));
  ASSERT_FALSE(specs.ok());
  EXPECT_EQ(specs.error().code, ErrorCode::kBadModelFile);
  EXPECT_NE(specs.error().message.find("duplicate"), std::string::npos);
}

// --- load_manifest: all-or-nothing registration -----------------------

TEST(RegistryLoad, MissingManifestFileIsTyped) {
  ModelRegistry registry;
  const auto loaded =
      registry.load_manifest("/nonexistent/models.json");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kBadModelFile);
  EXPECT_EQ(registry.size(), 0u);
}

TEST(RegistryLoad, BadWeightPathLeavesRegistryEmpty) {
  // First model is fine, second points at weight files that do not
  // exist: nothing may be registered.
  ModelRegistry registry;
  const auto loaded = registry.load_manifest_text(manifest_of(
      {small_model_json("good"),
       "{\"id\": \"bad\", \"neurons\": 64, \"layers\": 4, "
       "\"net\": \"/nonexistent/weights\"}"}));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kBadModelFile);
  EXPECT_EQ(registry.size(), 0u);
}

TEST(RegistryLoad, ManifestRegistersEveryModelWithFreshGenerations) {
  ModelRegistry registry;
  const auto loaded = registry.load_manifest_text(manifest_of(
      {small_model_json("beta"), small_model_json("alpha", "snicit")}));
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded.value(), 2u);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.ids(), (std::vector<std::string>{"alpha", "beta"}));

  const auto alpha = registry.find("alpha");
  const auto beta = registry.find("beta");
  ASSERT_NE(alpha, nullptr);
  ASSERT_NE(beta, nullptr);
  EXPECT_EQ(alpha->net->neurons(), 64);
  EXPECT_EQ(alpha->prototype->name().rfind("SNICIT", 0), 0u);
  EXPECT_NE(alpha->generation, 0u);
  EXPECT_NE(alpha->generation, beta->generation);
  EXPECT_EQ(registry.generation("alpha"), alpha->generation);
  EXPECT_EQ(registry.generation("unknown"), 0u);
}

TEST(RegistryLoad, TsvBackedModelLoadsThroughTypedLoader) {
  // Round-trip: generate a tiny net, save as SDGC TSV, load via manifest.
  radixnet::RadixNetOptions opt;
  opt.neurons = 32;
  opt.layers = 3;
  opt.fanin = 4;
  const auto net = radixnet::make_radixnet(opt);
  const std::string prefix = ::testing::TempDir() + "registry_tsv";
  radixnet::save_network_tsv(net, prefix);

  ModelRegistry registry;
  const auto loaded = registry.load_manifest_text(
      "{\"models\": [{\"id\": \"tsv\", \"engine\": \"reference\", "
      "\"neurons\": 32, \"layers\": 3, \"net\": \"" + prefix + "\"}]}");
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  const auto model = registry.find("tsv");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->net->neurons(), 32);
  EXPECT_EQ(model->net->num_layers(), 3u);
}

// --- add / swap / remove lifecycle ------------------------------------

ModelSpec tiny_spec(const std::string& id,
                    const std::string& engine = "reference") {
  ModelSpec spec;
  spec.id = id;
  spec.engine = engine;
  spec.neurons = 64;
  spec.layers = 4;
  spec.fanin = 8;
  return spec;
}

TEST(RegistryLifecycle, AddDuplicateIdIsBadInput) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.add(tiny_spec("m")).ok());
  const auto dup = registry.add(tiny_spec("m"));
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, ErrorCode::kBadInput);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(RegistryLifecycle, SwapBumpsGenerationAndPreservesOldSnapshot) {
  ModelRegistry registry;
  auto spec = tiny_spec("m");
  spec.seed = 1;
  ASSERT_TRUE(registry.add(spec).ok());
  const auto before = registry.find("m");
  ASSERT_NE(before, nullptr);

  spec.seed = 2;  // same shape, different weights
  const auto swapped = registry.swap(spec);
  ASSERT_TRUE(swapped.ok()) << swapped.error().message;
  EXPECT_GT(swapped.value(), before->generation);
  const auto after = registry.find("m");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->generation, swapped.value());
  EXPECT_NE(after->net.get(), before->net.get());

  // The pre-swap snapshot is still fully usable: an in-flight batch can
  // finish on the engine/net it started with.
  auto old_engine = before->make_engine();
  ASSERT_NE(old_engine, nullptr);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = 64;
  in_opt.batch = 3;
  const auto input = data::make_sdgc_input(in_opt).features;
  const auto result = old_engine->run(*before->net, input);
  EXPECT_EQ(result.output.cols(), 3u);
}

TEST(RegistryLifecycle, SwapCannotChangeNeuronCount) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.add(tiny_spec("m")).ok());
  auto wider = tiny_spec("m");
  wider.neurons = 128;
  const auto swapped = registry.swap(wider);
  ASSERT_FALSE(swapped.ok());
  EXPECT_EQ(swapped.error().code, ErrorCode::kBadInput);
  // Registry still serves the original.
  EXPECT_EQ(registry.find("m")->net->neurons(), 64);
}

TEST(RegistryLifecycle, SwapAndRemoveUnknownIdsAreBadInput) {
  ModelRegistry registry;
  EXPECT_EQ(registry.swap(tiny_spec("ghost")).error().code,
            ErrorCode::kBadInput);
  EXPECT_EQ(registry.remove("ghost").error().code, ErrorCode::kBadInput);
}

TEST(RegistryLifecycle, RemoveDropsLookupButNotHeldSnapshots) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.add(tiny_spec("m")).ok());
  const auto held = registry.find("m");
  ASSERT_TRUE(registry.remove("m").ok());
  EXPECT_EQ(registry.find("m"), nullptr);
  EXPECT_EQ(registry.generation("m"), 0u);
  EXPECT_EQ(registry.size(), 0u);
  // The held snapshot keeps serving.
  EXPECT_NE(held->net, nullptr);
  EXPECT_NE(held->make_engine(), nullptr);
}

TEST(RegistryLifecycle, CloneProducesIndependentBitIdenticalEngines) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.add(tiny_spec("m", "snicit")).ok());
  const auto model = registry.find("m");
  auto a = model->make_engine();
  auto b = model->make_engine();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a.get(), b.get());

  data::SdgcInputOptions in_opt;
  in_opt.neurons = 64;
  in_opt.batch = 8;
  const auto input = data::make_sdgc_input(in_opt).features;
  const auto ra = a->run(*model->net, input);
  const auto rb = b->run(*model->net, input);
  ASSERT_EQ(ra.output.cols(), rb.output.cols());
  EXPECT_EQ(std::memcmp(ra.output.data(), rb.output.data(),
                        ra.output.rows() * ra.output.cols() *
                            sizeof(float)),
            0);
}

TEST(RegistryLifecycle, CloneUnableEngineIsRejected) {
  // An engine whose clone() returns nullptr cannot be pooled by serving
  // lanes; registration must refuse it up front, typed.
  class Unclonable final : public dnn::InferenceEngine {
   public:
    std::string name() const override { return "unclonable"; }
    dnn::RunResult run(const dnn::SparseDnn&,
                       const dnn::DenseMatrix& input) override {
      dnn::RunResult result;
      result.output = input;
      return result;
    }
  };
  radixnet::RadixNetOptions opt;
  opt.neurons = 64;
  opt.layers = 4;
  opt.fanin = 8;
  auto net = std::make_shared<const dnn::SparseDnn>(
      radixnet::make_radixnet(opt));
  ModelRegistry registry;
  const auto added =
      registry.add_model("m", net, std::make_shared<Unclonable>());
  ASSERT_FALSE(added.ok());
  EXPECT_EQ(added.error().code, ErrorCode::kBadInput);
  EXPECT_EQ(registry.size(), 0u);
}

}  // namespace
}  // namespace snicit::serve
