#include "train/mlp.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "train/adam.hpp"
#include "train/linear.hpp"
#include "train/loss.hpp"

namespace snicit::train {
namespace {

TEST(SparseLinear, ForwardMatchesManualComputation) {
  platform::Rng rng(1);
  SparseLinear layer(3, 2, 1.0, rng);
  // Overwrite with known weights: W = [[1,2,3],[4,5,6]], b = (0.5, -0.5).
  layer.weights() = {1, 2, 3, 4, 5, 6};
  layer.bias() = {0.5f, -0.5f};
  DenseMatrix x(3, 1);
  x.at(0, 0) = 1.0f;
  x.at(1, 0) = 0.0f;
  x.at(2, 0) = 2.0f;
  DenseMatrix y(2, 1);
  layer.forward(x, y);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1 + 6 + 0.5f);
  EXPECT_FLOAT_EQ(y.at(1, 0), 4 + 12 - 0.5f);
}

TEST(SparseLinear, MaskZeroesStayZeroThroughTraining) {
  platform::Rng rng(2);
  SparseLinear layer(16, 16, 0.5, rng);
  const auto mask = layer.mask();
  // Simulate a few "optimizer" perturbations + re-masking.
  for (int step = 0; step < 3; ++step) {
    for (auto& w : layer.weights()) w += 0.1f;
    layer.apply_mask();
  }
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] == 0) {
      EXPECT_FLOAT_EQ(layer.weights()[i], 0.0f);
    }
  }
}

TEST(SparseLinear, DensityApproximatesRequest) {
  platform::Rng rng(3);
  SparseLinear layer(64, 64, 0.55, rng);
  EXPECT_NEAR(layer.density(), 0.55, 0.05);
}

TEST(SparseLinear, BackwardGradientsMatchFiniteDifferences) {
  platform::Rng rng(4);
  SparseLinear layer(4, 3, 1.0, rng);
  DenseMatrix x(4, 2);
  for (std::size_t i = 0; i < 8; ++i) x.data()[i] = rng.uniform(-1, 1);

  // Loss = sum(y): dL/dy = 1.
  auto loss = [&] {
    DenseMatrix y(3, 2);
    layer.forward(x, y);
    float s = 0.0f;
    for (std::size_t i = 0; i < 6; ++i) s += y.data()[i];
    return s;
  };
  DenseMatrix dy(3, 2, 1.0f);
  DenseMatrix dx(4, 2);
  layer.zero_grad();
  layer.backward(x, dy, dx);

  const float eps = 1e-3f;
  // Check two weight gradients and one bias gradient numerically.
  for (std::size_t idx : {0u, 7u}) {
    const float base = loss();
    layer.weights()[idx] += eps;
    const float up = loss();
    layer.weights()[idx] -= eps;
    EXPECT_NEAR((up - base) / eps, layer.weight_grad()[idx], 2e-2f);
    (void)base;
  }
  {
    const float base = loss();
    layer.bias()[1] += eps;
    const float up = loss();
    layer.bias()[1] -= eps;
    EXPECT_NEAR((up - base) / eps, layer.bias_grad()[1], 2e-2f);
  }
  // Input gradient: dL/dx_i = sum_o W[o][i].
  for (std::size_t i = 0; i < 4; ++i) {
    float expect = 0.0f;
    for (std::size_t o = 0; o < 3; ++o) expect += layer.weights()[o * 4 + i];
    EXPECT_NEAR(dx.at(i, 0), expect, 1e-4f);
    EXPECT_NEAR(dx.at(i, 1), expect, 1e-4f);
  }
}

TEST(ClippedRelu, ForwardAndBackward) {
  DenseMatrix y(4, 1);
  y.at(0, 0) = -1.0f;
  y.at(1, 0) = 0.5f;
  y.at(2, 0) = 2.0f;
  y.at(3, 0) = 1.0f;
  clipped_relu(y, 1.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(1, 0), 0.5f);
  EXPECT_FLOAT_EQ(y.at(2, 0), 1.0f);

  DenseMatrix dy(4, 1, 1.0f);
  clipped_relu_backward(y, dy, 1.0f);
  EXPECT_FLOAT_EQ(dy.at(0, 0), 0.0f);  // at lower clip
  EXPECT_FLOAT_EQ(dy.at(1, 0), 1.0f);  // interior
  EXPECT_FLOAT_EQ(dy.at(2, 0), 0.0f);  // at upper clip
  EXPECT_FLOAT_EQ(dy.at(3, 0), 0.0f);  // exactly at clip: saturated
}

TEST(SoftmaxXent, LossAndGradientSanity) {
  DenseMatrix logits(3, 2);
  logits.at(0, 0) = 5.0f;  // confident, correct (label 0)
  logits.at(2, 1) = -5.0f; // wrong direction for label 2
  DenseMatrix dlogits(3, 2);
  const float loss = softmax_cross_entropy(logits, {0, 2}, dlogits);
  EXPECT_GT(loss, 0.0f);
  // Gradient columns sum to ~0 (softmax simplex property).
  for (std::size_t j = 0; j < 2; ++j) {
    float s = 0.0f;
    for (std::size_t c = 0; c < 3; ++c) s += dlogits.at(c, j);
    EXPECT_NEAR(s, 0.0f, 1e-6f);
  }
  // True-class gradient is negative.
  EXPECT_LT(dlogits.at(0, 0), 0.0f);
  EXPECT_LT(dlogits.at(2, 1), 0.0f);
}

TEST(AdamOpt, ConvergesOnQuadratic) {
  // Minimise f(w) = (w - 3)^2 with Adam.
  std::vector<float> w = {0.0f};
  AdamOptions opts;
  opts.lr = 0.1f;
  Adam adam(1, opts);
  for (int i = 0; i < 300; ++i) {
    std::vector<float> g = {2.0f * (w[0] - 3.0f)};
    adam.step(w, g);
  }
  EXPECT_NEAR(w[0], 3.0f, 0.05f);
}

TEST(AdamOpt, DecoupledWeightDecayShrinksParams) {
  // With zero gradients, AdamW reduces to pure exponential decay.
  std::vector<float> w = {1.0f};
  AdamOptions opts;
  opts.lr = 0.1f;
  opts.weight_decay = 0.5f;  // per-step factor 1 - 0.05
  Adam adam(1, opts);
  const std::vector<float> g = {0.0f};
  for (int i = 0; i < 10; ++i) adam.step(w, g);
  EXPECT_NEAR(w[0], std::pow(0.95f, 10.0f), 1e-4f);

  // Plain Adam leaves zero-gradient params untouched.
  std::vector<float> w2 = {1.0f};
  AdamOptions plain;
  plain.lr = 0.1f;
  Adam adam2(1, plain);
  for (int i = 0; i < 10; ++i) adam2.step(w2, g);
  EXPECT_FLOAT_EQ(w2[0], 1.0f);
}

TEST(MlpTraining, LearnsClusteredDataset) {
  data::ClusteredOptions dopt;
  dopt.dim = 32;
  dopt.classes = 4;
  dopt.count = 400;
  dopt.noise = 0.08;
  const auto ds = make_clustered_dataset(dopt);
  const auto train_set = ds.slice(0, 300);
  const auto test_set = ds.slice(300, 400);

  MlpOptions mopt;
  mopt.in_dim = 32;
  mopt.hidden = 32;
  mopt.sparse_layers = 4;
  mopt.classes = 4;
  mopt.density = 0.55;
  SparseMlp mlp(mopt);

  const double before = mlp.evaluate(test_set);
  TrainOptions topt;
  topt.epochs = 8;
  topt.batch_size = 32;
  topt.adam.lr = 3e-3f;
  const auto history = mlp.fit(train_set, topt);
  const double after = mlp.evaluate(test_set);

  EXPECT_GT(after, 0.9);
  EXPECT_GT(after, before);
  EXPECT_LT(history.loss_per_epoch.back(), history.loss_per_epoch.front());
}

TEST(MlpExport, SparseDnnReproducesHiddenStack) {
  data::ClusteredOptions dopt;
  dopt.dim = 16;
  dopt.classes = 3;
  dopt.count = 30;
  const auto ds = make_clustered_dataset(dopt);

  MlpOptions mopt;
  mopt.in_dim = 16;
  mopt.hidden = 24;
  mopt.sparse_layers = 3;
  mopt.classes = 3;
  SparseMlp mlp(mopt);

  const auto net = mlp.to_sparse_dnn("export-test");
  EXPECT_EQ(net.num_layers(), 3u);
  EXPECT_EQ(net.neurons(), 24);
  EXPECT_FLOAT_EQ(net.ymax(), 1.0f);

  // forward(x) must equal: hidden_input -> SparseDnn feed-forward ->
  // output head.
  const auto h0 = mlp.hidden_input(ds.features);
  const auto hl = dnn::reference_forward(net, h0);
  const auto via_dnn = mlp.logits_from_hidden(hl);
  const auto direct = mlp.forward(ds.features);
  EXPECT_LE(DenseMatrix::max_abs_diff(via_dnn, direct), 1e-4f);
}

TEST(MlpExport, DensityWithinPaperBand) {
  MlpOptions mopt;
  mopt.in_dim = 16;
  mopt.hidden = 64;
  mopt.sparse_layers = 4;
  mopt.density = 0.55;
  SparseMlp mlp(mopt);
  EXPECT_GT(mlp.hidden_density(), 0.45);
  EXPECT_LT(mlp.hidden_density(), 0.65);
}

}  // namespace
}  // namespace snicit::train
