#include "snicit/adaptive_prune.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "platform/rng.hpp"
#include "radixnet/radixnet.hpp"
#include "snicit/engine.hpp"

namespace snicit::core {
namespace {

TEST(AdaptivePrune, ZeroTargetGivesZeroThreshold) {
  DenseMatrix y(4, 3, 1.0f);
  y.at(0, 1) = 2.0f;
  const auto batch = convert_to_compressed(y, {0}, 0.0f);
  EXPECT_FLOAT_EQ(choose_prune_threshold(batch, 0.0), 0.0f);
  EXPECT_FLOAT_EQ(choose_prune_threshold(batch, -1.0), 0.0f);
}

TEST(AdaptivePrune, EmptyResiduesGiveZeroThreshold) {
  DenseMatrix y(4, 3, 2.0f);  // all duplicates: residues all zero
  const auto batch = convert_to_compressed(y, {0}, 0.0f);
  EXPECT_FLOAT_EQ(choose_prune_threshold(batch, 0.5), 0.0f);
}

TEST(AdaptivePrune, QuantileSplitsResidueMass) {
  // Residues: half the entries at 0.1, half at 1.0. A 50% target must
  // land between them.
  DenseMatrix y(8, 2);
  for (std::size_t r = 0; r < 8; ++r) {
    y.at(r, 0) = 0.0f;                            // centroid
    y.at(r, 1) = (r < 4) ? 0.1f : 1.0f;           // residues
  }
  const auto batch = convert_to_compressed(y, {0}, 0.0f);
  const float threshold = choose_prune_threshold(batch, 0.5);
  EXPECT_GT(threshold, 0.1f);
  EXPECT_LT(threshold, 1.0f);
}

TEST(AdaptivePrune, ThresholdMonotoneInTarget) {
  platform::Rng rng(7);
  DenseMatrix y(64, 20);
  for (std::size_t j = 0; j < 20; ++j) {
    for (std::size_t r = 0; r < 64; ++r) {
      y.at(r, j) = rng.uniform(0.0f, 4.0f);
    }
  }
  const auto batch = convert_to_compressed(y, {0, 1}, 0.0f);
  float prev = 0.0f;
  for (double target : {0.1, 0.3, 0.5, 0.8}) {
    const float th = choose_prune_threshold(batch, target);
    EXPECT_GE(th, prev);
    prev = th;
  }
}

TEST(AdaptivePrune, EngineDerivesThresholdAndStaysAccurate) {
  radixnet::RadixNetOptions opt;
  opt.neurons = 128;
  opt.layers = 16;
  opt.fanin = 16;
  opt.seed = 3;
  const auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = 128;
  in_opt.batch = 48;
  in_opt.seed = 4;
  const auto input = data::make_sdgc_input(in_opt).features;
  const auto golden = dnn::reference_forward(net, input);

  SnicitParams params;
  params.threshold_layer = 8;
  params.sample_size = 16;
  params.downsample_dim = 0;
  params.adaptive_prune_target = 0.25;
  SnicitEngine engine(params);
  const auto result = engine.run(net, input);

  // A data-derived threshold was chosen and reported.
  EXPECT_GT(result.diagnostics.at("prune_threshold"), 0.0);
  // Categories still match the golden reference (pruning is gentle).
  EXPECT_DOUBLE_EQ(
      dnn::category_match_rate(dnn::sdgc_categories(result.output, 1e-3f),
                               dnn::sdgc_categories(golden, 1e-3f)),
      1.0);
}

TEST(AdaptivePrune, DisabledModeReportsConfiguredThreshold) {
  radixnet::RadixNetOptions opt;
  opt.neurons = 64;
  opt.layers = 8;
  opt.fanin = 8;
  const auto net = radixnet::make_radixnet(opt);
  dnn::DenseMatrix input(64, 8, 0.5f);
  SnicitParams params;
  params.threshold_layer = 4;
  params.prune_threshold = 0.015f;
  SnicitEngine engine(params);
  const auto result = engine.run(net, input);
  EXPECT_NEAR(result.diagnostics.at("prune_threshold"), 0.015, 1e-6);
}

}  // namespace
}  // namespace snicit::core
