#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace snicit::data {
namespace {

TEST(ClusteredDataset, ShapeAndLabels) {
  ClusteredOptions opt;
  opt.dim = 32;
  opt.classes = 4;
  opt.count = 100;
  const auto ds = make_clustered_dataset(opt);
  EXPECT_EQ(ds.dim(), 32u);
  EXPECT_EQ(ds.size(), 100u);
  EXPECT_EQ(ds.num_classes, 4u);
  for (int label : ds.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
}

TEST(ClusteredDataset, AllClassesPresentAndBalanced) {
  ClusteredOptions opt;
  opt.classes = 5;
  opt.count = 100;
  opt.dim = 16;
  const auto ds = make_clustered_dataset(opt);
  std::vector<int> counts(5, 0);
  for (int label : ds.labels) ++counts[label];
  for (int c : counts) EXPECT_EQ(c, 20);  // round-robin generation
}

TEST(ClusteredDataset, ValuesInUnitInterval) {
  const auto ds = make_clustered_dataset({});
  for (std::size_t i = 0; i < ds.features.rows() * ds.features.cols(); ++i) {
    EXPECT_GE(ds.features.data()[i], 0.0f);
    EXPECT_LE(ds.features.data()[i], 1.0f);
  }
}

TEST(ClusteredDataset, SameClassCloserThanCrossClass) {
  // The clustering property SNICIT depends on: intra-class distances must
  // be systematically smaller than inter-class distances.
  ClusteredOptions opt;
  opt.dim = 64;
  opt.classes = 3;
  opt.count = 60;
  opt.noise = 0.05;
  const auto ds = make_clustered_dataset(opt);
  double intra = 0.0;
  double inter = 0.0;
  std::size_t n_intra = 0;
  std::size_t n_inter = 0;
  for (std::size_t a = 0; a < ds.size(); ++a) {
    for (std::size_t b = a + 1; b < ds.size(); ++b) {
      double d = 0.0;
      for (std::size_t r = 0; r < ds.dim(); ++r) {
        const double diff = ds.features.at(r, a) - ds.features.at(r, b);
        d += diff * diff;
      }
      if (ds.labels[a] == ds.labels[b]) {
        intra += d;
        ++n_intra;
      } else {
        inter += d;
        ++n_inter;
      }
    }
  }
  ASSERT_GT(n_intra, 0u);
  ASSERT_GT(n_inter, 0u);
  EXPECT_LT(intra / n_intra, 0.5 * inter / n_inter);
}

TEST(ClusteredDataset, ShuffledPrefixCoversClasses) {
  // §3.2.1 takes the first s columns as the sample; the generator must
  // therefore shuffle classes across the batch.
  ClusteredOptions opt;
  opt.classes = 10;
  opt.count = 500;
  opt.dim = 16;
  const auto ds = make_clustered_dataset(opt);
  std::set<int> prefix_classes(ds.labels.begin(), ds.labels.begin() + 64);
  EXPECT_GE(prefix_classes.size(), 9u);
}

TEST(ClusteredDataset, DeterministicPerSeed) {
  ClusteredOptions opt;
  opt.count = 50;
  opt.dim = 8;
  opt.classes = 4;
  const auto a = make_clustered_dataset(opt);
  const auto b = make_clustered_dataset(opt);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_FLOAT_EQ(
      sparse::DenseMatrix::max_abs_diff(a.features, b.features), 0.0f);
}

TEST(DatasetSlice, ExtractsColumns) {
  ClusteredOptions opt;
  opt.count = 20;
  opt.dim = 8;
  opt.classes = 4;
  const auto ds = make_clustered_dataset(opt);
  const auto part = ds.slice(5, 12);
  EXPECT_EQ(part.size(), 7u);
  EXPECT_EQ(part.labels[0], ds.labels[5]);
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_FLOAT_EQ(part.features.at(r, 0), ds.features.at(r, 5));
    EXPECT_FLOAT_EQ(part.features.at(r, 6), ds.features.at(r, 11));
  }
}

TEST(SdgcInput, BinaryValues) {
  SdgcInputOptions opt;
  opt.neurons = 128;
  opt.batch = 64;
  const auto ds = make_sdgc_input(opt);
  EXPECT_EQ(ds.dim(), 128u);
  EXPECT_EQ(ds.size(), 64u);
  for (std::size_t i = 0; i < 128u * 64u; ++i) {
    const float v = ds.features.data()[i];
    EXPECT_TRUE(v == 0.0f || v == 1.0f);
  }
}

TEST(SdgcInput, OnFractionApproximatelyRespected) {
  SdgcInputOptions opt;
  opt.neurons = 4096;
  opt.batch = 32;
  opt.on_fraction = 0.2;
  opt.flip_prob = 0.0;
  const auto ds = make_sdgc_input(opt);
  const double density =
      static_cast<double>(ds.features.count_nonzeros()) / (4096.0 * 32.0);
  EXPECT_NEAR(density, 0.2, 0.05);
}

TEST(SdgcInput, SameClassSharesPrototype) {
  SdgcInputOptions opt;
  opt.neurons = 256;
  opt.batch = 40;
  opt.classes = 4;
  opt.flip_prob = 0.0;  // no noise: class columns are identical
  const auto ds = make_sdgc_input(opt);
  for (std::size_t a = 0; a < ds.size(); ++a) {
    for (std::size_t b = a + 1; b < ds.size(); ++b) {
      if (ds.labels[a] != ds.labels[b]) continue;
      for (std::size_t r = 0; r < ds.dim(); ++r) {
        ASSERT_FLOAT_EQ(ds.features.at(r, a), ds.features.at(r, b));
      }
    }
  }
}

}  // namespace
}  // namespace snicit::data
