#include "snicit/stream.hpp"

#include <gtest/gtest.h>

#include "baselines/serial.hpp"
#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "radixnet/radixnet.hpp"
#include "snicit/engine.hpp"

namespace snicit::core {
namespace {

struct Workload {
  dnn::SparseDnn net;
  dnn::DenseMatrix input;
};

Workload make_workload(std::size_t batch) {
  radixnet::RadixNetOptions opt;
  opt.neurons = 96;
  opt.layers = 10;
  opt.fanin = 8;
  opt.seed = 3;
  auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = 96;
  in_opt.batch = batch;
  in_opt.seed = 4;
  auto input = data::make_sdgc_input(in_opt).features;
  return {std::move(net), std::move(input)};
}

TEST(Stream, MatchesSingleShotRun) {
  auto wl = make_workload(50);
  SnicitParams params;
  params.threshold_layer = 4;
  SnicitEngine engine(params);

  StreamOptions opt;
  opt.batch_size = 16;  // 50 -> batches of 16,16,16,2
  const auto streamed = stream_inference(engine, wl.net, wl.input, opt);
  EXPECT_EQ(streamed.batches, 4u);
  ASSERT_EQ(streamed.batch_ms.size(), 4u);
  EXPECT_EQ(streamed.outputs.rows(), 96u);
  EXPECT_EQ(streamed.outputs.cols(), 50u);

  // Per-batch results must match running each batch independently, which
  // for the exact reference equals the full-batch run.
  const auto expected = dnn::reference_forward(wl.net, wl.input);
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(streamed.outputs, expected),
            5e-3f);
}

TEST(Stream, ExactEngineStreamsExactly) {
  auto wl = make_workload(23);
  baselines::SerialEngine engine;
  StreamOptions opt;
  opt.batch_size = 7;
  const auto streamed = stream_inference(engine, wl.net, wl.input, opt);
  const auto expected = dnn::reference_forward(wl.net, wl.input);
  EXPECT_FLOAT_EQ(
      dnn::DenseMatrix::max_abs_diff(streamed.outputs, expected), 0.0f);
  EXPECT_EQ(streamed.batches, 4u);  // 7+7+7+2
}

TEST(Stream, KeepRowsTruncatesOutput) {
  auto wl = make_workload(10);
  baselines::SerialEngine engine;
  StreamOptions opt;
  opt.batch_size = 10;
  opt.keep_rows = 5;
  const auto streamed = stream_inference(engine, wl.net, wl.input, opt);
  EXPECT_EQ(streamed.outputs.rows(), 5u);
  const auto expected = dnn::reference_forward(wl.net, wl.input);
  for (std::size_t j = 0; j < 10; ++j) {
    for (std::size_t r = 0; r < 5; ++r) {
      EXPECT_FLOAT_EQ(streamed.outputs.at(r, j), expected.at(r, j));
    }
  }
}

TEST(Stream, BatchLargerThanInput) {
  auto wl = make_workload(5);
  baselines::SerialEngine engine;
  StreamOptions opt;
  opt.batch_size = 100;
  const auto streamed = stream_inference(engine, wl.net, wl.input, opt);
  EXPECT_EQ(streamed.batches, 1u);
  EXPECT_EQ(streamed.outputs.cols(), 5u);
}

TEST(Stream, KeepRowsBeyondNeuronsClampsToFullColumn) {
  auto wl = make_workload(12);
  baselines::SerialEngine engine;
  StreamOptions opt;
  opt.batch_size = 5;
  opt.keep_rows = 500;  // > 96 rows: must clamp, not read out of bounds
  const auto streamed = stream_inference(engine, wl.net, wl.input, opt);
  EXPECT_EQ(streamed.outputs.rows(), 96u);
  const auto expected = dnn::reference_forward(wl.net, wl.input);
  EXPECT_FLOAT_EQ(
      dnn::DenseMatrix::max_abs_diff(streamed.outputs, expected), 0.0f);
}

TEST(Stream, ZeroSampleInput) {
  auto wl = make_workload(5);
  dnn::DenseMatrix empty(wl.input.rows(), 0);
  baselines::SerialEngine engine;
  StreamOptions opt;
  opt.batch_size = 8;
  const auto streamed = stream_inference(engine, wl.net, empty, opt);
  EXPECT_EQ(streamed.batches, 0u);
  EXPECT_TRUE(streamed.batch_ms.empty());
  EXPECT_EQ(streamed.outputs.rows(), 96u);
  EXPECT_EQ(streamed.outputs.cols(), 0u);
  EXPECT_DOUBLE_EQ(streamed.total_ms, 0.0);
  EXPECT_DOUBLE_EQ(streamed.mean_batch_ms(), 0.0);
  EXPECT_DOUBLE_EQ(streamed.throughput(0), 0.0);
}

TEST(Stream, ZeroSamplesWithKeepRows) {
  auto wl = make_workload(5);
  dnn::DenseMatrix empty(wl.input.rows(), 0);
  baselines::SerialEngine engine;
  StreamOptions opt;
  opt.batch_size = 4;
  opt.keep_rows = 10;
  const auto streamed = stream_inference(engine, wl.net, empty, opt);
  EXPECT_EQ(streamed.outputs.rows(), 10u);
  EXPECT_EQ(streamed.outputs.cols(), 0u);
}

TEST(Stream, BatchSizeOne) {
  auto wl = make_workload(9);
  baselines::SerialEngine engine;
  StreamOptions opt;
  opt.batch_size = 1;
  const auto streamed = stream_inference(engine, wl.net, wl.input, opt);
  EXPECT_EQ(streamed.batches, 9u);
  const auto expected = dnn::reference_forward(wl.net, wl.input);
  EXPECT_FLOAT_EQ(
      dnn::DenseMatrix::max_abs_diff(streamed.outputs, expected), 0.0f);
}

TEST(Stream, LatencyQuantilesTrackBatches) {
  auto wl = make_workload(40);
  baselines::SerialEngine engine;
  StreamOptions opt;
  opt.batch_size = 4;
  const auto streamed = stream_inference(engine, wl.net, wl.input, opt);
  EXPECT_EQ(streamed.latency.count(), streamed.batches);
  EXPECT_GE(streamed.latency.p95(), streamed.latency.p50());
  EXPECT_GE(streamed.latency.p99(), streamed.latency.p95());
  double lo = streamed.batch_ms.front(), hi = lo;
  for (double ms : streamed.batch_ms) {
    lo = std::min(lo, ms);
    hi = std::max(hi, ms);
  }
  EXPECT_DOUBLE_EQ(streamed.latency.quantile(0.0), lo);
  EXPECT_DOUBLE_EQ(streamed.latency.quantile(1.0), hi);
}

TEST(Stream, ThroughputAccounting) {
  auto wl = make_workload(20);
  baselines::SerialEngine engine;
  const auto streamed = stream_inference(engine, wl.net, wl.input,
                                         {.batch_size = 5, .keep_rows = 0});
  EXPECT_GT(streamed.total_ms, 0.0);
  EXPECT_GT(streamed.mean_batch_ms(), 0.0);
  EXPECT_GT(streamed.throughput(20), 0.0);
  double sum = 0.0;
  for (double ms : streamed.batch_ms) sum += ms;
  EXPECT_NEAR(sum, streamed.total_ms, 1e-9);
}

}  // namespace
}  // namespace snicit::core
