#include "dnn/memory.hpp"

#include <gtest/gtest.h>

#include "radixnet/radixnet.hpp"

namespace snicit::dnn {
namespace {

SparseDnn small_net() {
  radixnet::RadixNetOptions opt;
  opt.neurons = 128;
  opt.layers = 4;
  opt.fanin = 8;
  return radixnet::make_radixnet(opt);
}

TEST(Memory, CsrBytesMatchHandComputation) {
  const auto net = small_net();
  const auto fp = model_footprint(net, /*include_mirrors=*/false);
  // Per layer: (128+1) offsets * 8B + 1024 indices * 4B + 1024 floats * 4B.
  const std::size_t per_layer = 129 * 8 + 1024 * 4 + 1024 * 4;
  EXPECT_EQ(fp.csr_bytes, 4 * per_layer);
  EXPECT_EQ(fp.csc_bytes, 0u);
  EXPECT_EQ(fp.ell_bytes, 0u);
}

TEST(Memory, MirrorsCounted) {
  const auto net = small_net();
  const auto fp = model_footprint(net, /*include_mirrors=*/true);
  EXPECT_GT(fp.csc_bytes, 0u);
  EXPECT_GT(fp.ell_bytes, 0u);
  // Fixed fan-in 8: ELL payload = rows * 8 * (4+4) bytes per layer.
  EXPECT_EQ(fp.ell_bytes, 4u * 128 * 8 * 8);
  EXPECT_EQ(fp.total(), fp.csr_bytes + fp.csc_bytes + fp.ell_bytes);
}

TEST(Memory, WorkingSetScalesLinearlyWithBatch) {
  const auto net = small_net();
  const auto one = run_working_set_bytes(net, 1, 3);
  const auto thousand = run_working_set_bytes(net, 1000, 3);
  EXPECT_EQ(thousand, one * 1000);
  // Three N-float buffers dominate.
  EXPECT_GE(one, 3u * 128 * 4);
}

TEST(Memory, MaxBatchForBudgetInvertsWorkingSet) {
  const auto net = small_net();
  const std::size_t budget = 10 * 1024 * 1024;  // 10 MiB
  const auto max_b = max_batch_for_budget(net, budget, 3);
  ASSERT_GT(max_b, 0u);
  const auto model = model_footprint(net).total();
  EXPECT_LE(model + run_working_set_bytes(net, max_b, 3), budget);
  EXPECT_GT(model + run_working_set_bytes(net, max_b + 1, 3), budget);
}

TEST(Memory, TinyBudgetYieldsZero) {
  const auto net = small_net();
  EXPECT_EQ(max_batch_for_budget(net, 1024, 3), 0u);
}

TEST(Memory, PaperScaleBatchCapReproduced) {
  // The paper runs B = 30000 (not 60000) at 65536 neurons on a 48 GB
  // GPU. Reproduce the order of magnitude: at 65536 neurons and 1920
  // layers, 60000 columns must NOT fit in 48 GB alongside the model,
  // while 30000 columns should be within an order of magnitude of the
  // budget. We compute with the footprint model only (no allocation).
  radixnet::RadixNetOptions opt;
  opt.neurons = 65536;
  opt.layers = 1;  // build one layer; scale the footprint arithmetically
  opt.fanin = 32;
  const auto net = radixnet::make_radixnet(opt);
  const auto per_layer = model_footprint(net, false).csr_bytes;
  const std::size_t model_1920 = per_layer * 1920;
  const std::size_t budget = 48ULL * 1024 * 1024 * 1024;
  const std::size_t ws60000 = run_working_set_bytes(net, 60000, 3);
  const std::size_t ws30000 = run_working_set_bytes(net, 30000, 3);
  EXPECT_GT(model_1920 + ws60000, budget);  // 60000 overflows
  EXPECT_LT(ws30000, budget);               // 30000's buffers fit
}

}  // namespace
}  // namespace snicit::dnn
