#include "sparse/ell.hpp"

#include <gtest/gtest.h>

#include "platform/rng.hpp"
#include "radixnet/radixnet.hpp"
#include "sparse/spmm.hpp"

namespace snicit::sparse {
namespace {

CooMatrix ragged_example() {
  // 3x4, rows of different lengths (forces padding):
  //   [ 1 0 2 0 ]
  //   [ 0 0 0 0 ]
  //   [ 4 5 0 6 ]
  CooMatrix coo(3, 4);
  coo.add(0, 0, 1.0f);
  coo.add(0, 2, 2.0f);
  coo.add(2, 0, 4.0f);
  coo.add(2, 1, 5.0f);
  coo.add(2, 3, 6.0f);
  return coo;
}

TEST(Ell, FromCooShapeAndPadding) {
  const auto ell = EllMatrix::from_coo(ragged_example());
  EXPECT_EQ(ell.rows(), 3);
  EXPECT_EQ(ell.cols(), 4);
  EXPECT_EQ(ell.width(), 3);  // longest row has 3 entries
  EXPECT_EQ(ell.nnz(), 5);
  EXPECT_TRUE(ell.is_valid());
  EXPECT_NEAR(ell.padding_ratio(), 1.0 - 5.0 / 9.0, 1e-12);
}

TEST(Ell, PaddedSlotsCarryZero) {
  const auto ell = EllMatrix::from_coo(ragged_example());
  const auto row1 = ell.row_cols(1);  // empty row: all padding
  for (Index c : row1) {
    EXPECT_EQ(c, EllMatrix::kPad);
  }
  for (float v : ell.row_vals(1)) {
    EXPECT_FLOAT_EQ(v, 0.0f);
  }
}

TEST(Ell, FixedFaninHasNoPadding) {
  radixnet::RadixNetOptions opt;
  opt.neurons = 128;
  opt.layers = 1;
  opt.fanin = 8;
  const auto net = radixnet::make_radixnet(opt);
  const auto ell = EllMatrix::from_csr(net.weight(0));
  EXPECT_EQ(ell.width(), 8);
  EXPECT_DOUBLE_EQ(ell.padding_ratio(), 0.0);
  EXPECT_TRUE(ell.is_valid());
}

TEST(Ell, SpmmMatchesCsrGather) {
  platform::Rng rng(3);
  CooMatrix coo(40, 40);
  for (Index r = 0; r < 40; ++r) {
    for (Index c = 0; c < 40; ++c) {
      if (rng.next_bool(0.15)) coo.add(r, c, rng.uniform(-1.0f, 1.0f));
    }
  }
  const auto csr = CsrMatrix::from_coo(coo);
  const auto ell = EllMatrix::from_csr(csr);
  DenseMatrix y(40, 9);
  for (std::size_t i = 0; i < 40 * 9; ++i) {
    y.data()[i] = rng.uniform(0.0f, 2.0f);
  }
  DenseMatrix a(40, 9);
  DenseMatrix b(40, 9);
  spmm_gather(csr, y, a);
  spmm_ell(ell, y, b);
  EXPECT_LE(DenseMatrix::max_abs_diff(a, b), 1e-5f);
}

TEST(Ell, SpmmColsOnlyTouchesListed) {
  const auto ell = EllMatrix::from_coo(ragged_example());
  DenseMatrix y(4, 3, 1.0f);
  DenseMatrix out(3, 3, -9.0f);
  const std::vector<Index> cols = {1};
  spmm_ell_cols(ell, y, cols, out);
  EXPECT_FLOAT_EQ(out.at(0, 1), 3.0f);   // 1 + 2
  EXPECT_FLOAT_EQ(out.at(1, 1), 0.0f);   // empty row
  EXPECT_FLOAT_EQ(out.at(2, 1), 15.0f);  // 4 + 5 + 6
  EXPECT_FLOAT_EQ(out.at(0, 0), -9.0f);  // untouched
  EXPECT_FLOAT_EQ(out.at(2, 2), -9.0f);
}

TEST(Ell, EmptyMatrix) {
  CooMatrix coo(4, 4);
  const auto ell = EllMatrix::from_coo(coo);
  EXPECT_EQ(ell.width(), 0);
  EXPECT_EQ(ell.nnz(), 0);
  EXPECT_TRUE(ell.is_valid());
  DenseMatrix y(4, 2, 1.0f);
  DenseMatrix out(4, 2, 5.0f);
  spmm_ell(ell, y, out);
  EXPECT_EQ(out.count_nonzeros(), 0u);  // all rows sum to zero
}

// Property sweep: ELL == CSR gather over random shapes/densities.
class EllEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(EllEquivalence, MatchesGather) {
  const auto [n, b, density] = GetParam();
  platform::Rng rng(n * 100 + b);
  CooMatrix coo(n, n);
  for (Index r = 0; r < n; ++r) {
    for (Index c = 0; c < n; ++c) {
      if (rng.next_bool(density)) coo.add(r, c, rng.uniform(-1.0f, 1.0f));
    }
  }
  const auto csr = CsrMatrix::from_coo(coo);
  const auto ell = EllMatrix::from_csr(csr);
  ASSERT_TRUE(ell.is_valid());
  DenseMatrix y(static_cast<std::size_t>(n), static_cast<std::size_t>(b));
  for (std::size_t i = 0; i < y.rows() * y.cols(); ++i) {
    y.data()[i] = rng.uniform(-1.0f, 1.0f);
  }
  DenseMatrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(b));
  DenseMatrix c2(static_cast<std::size_t>(n), static_cast<std::size_t>(b));
  spmm_gather(csr, y, a);
  spmm_ell(ell, y, c2);
  EXPECT_LE(DenseMatrix::max_abs_diff(a, c2), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EllEquivalence,
    ::testing::Combine(::testing::Values(8, 33, 128),
                       ::testing::Values(1, 16),
                       ::testing::Values(0.02, 0.2, 0.7)));

}  // namespace
}  // namespace snicit::sparse
