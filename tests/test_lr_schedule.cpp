#include "train/lr_schedule.hpp"

#include <gtest/gtest.h>

namespace snicit::train {
namespace {

TEST(LrSchedule, ConstantIsFlat) {
  LrSchedule s;
  s.base_lr = 0.01f;
  for (int e = 0; e < 20; ++e) {
    EXPECT_FLOAT_EQ(s.at(e), 0.01f);
  }
}

TEST(LrSchedule, StepDecayNotches) {
  LrSchedule s;
  s.base_lr = 1.0f;
  s.decay = LrDecay::kStep;
  s.step_every = 5;
  s.gamma = 0.5f;
  EXPECT_FLOAT_EQ(s.at(0), 1.0f);
  EXPECT_FLOAT_EQ(s.at(4), 1.0f);
  EXPECT_FLOAT_EQ(s.at(5), 0.5f);
  EXPECT_FLOAT_EQ(s.at(9), 0.5f);
  EXPECT_FLOAT_EQ(s.at(10), 0.25f);
}

TEST(LrSchedule, CosineAnnealsToFloor) {
  LrSchedule s;
  s.base_lr = 1.0f;
  s.decay = LrDecay::kCosine;
  s.total_epochs = 10;
  s.floor_lr = 0.1f;
  EXPECT_FLOAT_EQ(s.at(0), 1.0f);
  EXPECT_NEAR(s.at(5), (1.0f + 0.1f) / 2.0f, 1e-6);  // midpoint
  EXPECT_NEAR(s.at(10), 0.1f, 1e-6);
  EXPECT_NEAR(s.at(50), 0.1f, 1e-6);  // clamped past the horizon
}

TEST(LrSchedule, CosineIsMonotoneNonIncreasing) {
  LrSchedule s;
  s.base_lr = 1.0f;
  s.decay = LrDecay::kCosine;
  s.total_epochs = 30;
  for (int e = 1; e <= 30; ++e) {
    EXPECT_LE(s.at(e), s.at(e - 1) + 1e-7);
  }
}

TEST(LrSchedule, WarmupRampsLinearly) {
  LrSchedule s;
  s.base_lr = 1.0f;
  s.warmup_epochs = 4;
  EXPECT_FLOAT_EQ(s.at(0), 0.2f);  // 1/5
  EXPECT_FLOAT_EQ(s.at(1), 0.4f);
  EXPECT_FLOAT_EQ(s.at(3), 0.8f);
  EXPECT_FLOAT_EQ(s.at(4), 1.0f);  // warmup over
}

TEST(LrSchedule, WarmupComposesWithDecay) {
  LrSchedule s;
  s.base_lr = 1.0f;
  s.decay = LrDecay::kStep;
  s.step_every = 2;
  s.gamma = 0.5f;
  s.warmup_epochs = 2;
  EXPECT_FLOAT_EQ(s.at(0), 1.0f / 3.0f);  // warmup on epoch 0
  EXPECT_FLOAT_EQ(s.at(1), 2.0f / 3.0f);  // still pre-notch, warming
  EXPECT_FLOAT_EQ(s.at(2), 0.5f);         // first decay notch, no warmup
}

}  // namespace
}  // namespace snicit::train
