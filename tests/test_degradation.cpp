// Graceful-degradation suite: the SNICIT divergence guard must catch
// injected numerical corruption (NaN tiles from the load-reduced spMM,
// poisoned conversion output), fall back mid-network to the dense
// baseline path, match the serial reference exactly, and attribute the
// fallback in traces/diagnostics/metrics and StreamResult.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "platform/fault_injection.hpp"
#include "platform/metrics.hpp"
#include "radixnet/radixnet.hpp"
#include "snicit/engine.hpp"
#include "snicit/parallel_stream.hpp"

namespace snicit::core {
namespace {

struct Workload {
  dnn::SparseDnn net;
  dnn::DenseMatrix input;
};

Workload make_workload(std::size_t batch = 48) {
  radixnet::RadixNetOptions opt;
  opt.neurons = 64;
  opt.layers = 12;
  opt.fanin = 8;
  opt.seed = 17;
  auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = 64;
  in_opt.batch = batch;
  in_opt.seed = 18;
  auto input = data::make_sdgc_input(in_opt).features;
  return {std::move(net), std::move(input)};
}

SnicitParams base_params() {
  SnicitParams p;
  p.threshold_layer = 4;
  p.sample_size = 16;
  p.downsample_dim = 0;
  p.record_trace = true;
  return p;
}

class DegradationTest : public ::testing::Test {
 protected:
  void TearDown() override {
    platform::fault::FaultRegistry::global().clear();
  }
};

TEST_F(DegradationTest, CleanRunNeverFallsBack) {
  auto wl = make_workload();
  SnicitEngine engine(base_params());
  const auto result = engine.run(wl.net, wl.input);
  EXPECT_EQ(engine.last_trace().fallback_layer, -1);
  EXPECT_EQ(result.diagnostics.count("fallback_layer"), 0u);
}

TEST_F(DegradationTest, NanTileTriggersExactDenseFallback) {
  // nan_tile:1.0 poisons the first load-reduced spMM after conversion:
  // the Eq. (5) update detects the NaN at the threshold layer and the
  // engine recomputes layers t..l-1 densely from the checkpointed Y(t).
  // The fallback path must match the serial reference bit-for-bit.
  auto wl = make_workload();
  ASSERT_TRUE(platform::fault::FaultRegistry::global()
                  .configure("nan_tile:1.0", 42)
                  .ok());
  SnicitEngine engine(base_params());
  const auto result = engine.run(wl.net, wl.input);

  EXPECT_EQ(engine.last_trace().fallback_layer, 4);  // t = threshold layer
  ASSERT_EQ(result.diagnostics.count("fallback_layer"), 1u);
  EXPECT_DOUBLE_EQ(result.diagnostics.at("fallback_layer"), 4.0);

  const auto golden = dnn::reference_forward(wl.net, wl.input);
  EXPECT_FLOAT_EQ(dnn::DenseMatrix::max_abs_diff(result.output, golden),
                  0.0f);
  // The run reports a "fallback" stage and full per-layer timings.
  EXPECT_GT(result.stages.get("fallback"), 0.0);
  EXPECT_EQ(result.layer_ms.size(), wl.net.num_layers());
}

TEST_F(DegradationTest, ConvertNanCaughtByPostConversionScan) {
  // convert_nan:1.0 poisons a residue column during conversion — possibly
  // one the load-reduced spMM would never touch — so the engine's
  // post-conversion sanity scan must catch it before any update runs.
  auto wl = make_workload();
  ASSERT_TRUE(platform::fault::FaultRegistry::global()
                  .configure("convert_nan:1.0", 42)
                  .ok());
  SnicitEngine engine(base_params());
  const auto result = engine.run(wl.net, wl.input);

  EXPECT_EQ(engine.last_trace().fallback_layer, 4);
  const auto golden = dnn::reference_forward(wl.net, wl.input);
  EXPECT_FLOAT_EQ(dnn::DenseMatrix::max_abs_diff(result.output, golden),
                  0.0f);
}

TEST_F(DegradationTest, GuardOffLetsCorruptionThrough) {
  // The guard is load-bearing: with divergence_guard=false the same
  // nan_tile drill reaches the output.
  auto wl = make_workload();
  ASSERT_TRUE(platform::fault::FaultRegistry::global()
                  .configure("nan_tile:1.0", 42)
                  .ok());
  auto params = base_params();
  params.divergence_guard = false;
  SnicitEngine engine(params);
  const auto result = engine.run(wl.net, wl.input);

  EXPECT_EQ(engine.last_trace().fallback_layer, -1);
  bool has_nan = false;
  for (std::size_t j = 0; j < result.output.cols() && !has_nan; ++j) {
    const float* col = result.output.col(j);
    for (std::size_t r = 0; r < result.output.rows(); ++r) {
      if (std::isnan(col[r])) {
        has_nan = true;
        break;
      }
    }
  }
  EXPECT_TRUE(has_nan);
}

TEST_F(DegradationTest, FallbackIsCountedInMetrics) {
  auto wl = make_workload();
  ASSERT_TRUE(platform::fault::FaultRegistry::global()
                  .configure("nan_tile:1.0", 42)
                  .ok());
  platform::metrics::set_enabled(true);
  auto& registry = platform::metrics::MetricsRegistry::global();
  const auto before = registry.counter("snicit.fallbacks").get();
  SnicitEngine engine(base_params());
  engine.run(wl.net, wl.input);
  EXPECT_EQ(registry.counter("snicit.fallbacks").get(), before + 1);
  EXPECT_DOUBLE_EQ(registry.gauge("snicit.fallback_layer").get(), 4.0);
  platform::metrics::set_enabled(false);
}

TEST_F(DegradationTest, StreamResultCountsDegradedBatches) {
  // Through the serving pipeline every batch degrades under nan_tile:1.0
  // — StreamResult::degraded_batches accounts for all of them and the
  // stream output still matches the reference exactly.
  auto wl = make_workload(64);
  ASSERT_TRUE(platform::fault::FaultRegistry::global()
                  .configure("nan_tile:1.0", 42)
                  .ok());
  ParallelStreamOptions opt;
  opt.batch_size = 16;  // 4 batches
  opt.workers = 2;
  SnicitEngine engine(base_params());
  const auto result =
      ParallelStreamExecutor(opt).run(engine, wl.net, wl.input);

  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.degraded_batches, 4u);
  const auto golden = dnn::reference_forward(wl.net, wl.input);
  EXPECT_FLOAT_EQ(dnn::DenseMatrix::max_abs_diff(result.outputs, golden),
                  0.0f);
}

}  // namespace
}  // namespace snicit::core
