// Differential kernel-equivalence suite for the spMM family.
//
// The scalar kernels (spmm_gather / spmm_gather_cols / spmm_scatter /
// spmm_scatter_cols) are the reference semantics; every optimized variant
// (register-blocked SIMD, row-parallel threaded, cache-tiled) must match
// them on randomized weights and activations covering the shapes the
// engines actually produce: empty weight rows, dense rows, single-column
// batches, batch widths that are not a multiple of the 8-lane block.
//
// Within a kernel family the accumulation order per output element is
// identical by construction, so the comparison is bitwise (memcmp — a
// -0.0f/NaN slip would fail loudly). Across families (gather vs scatter
// vs tiled) the reduction order may differ, so those comparisons are
// bounded-error instead. The policy layer (cost model, selector, env
// parsing, dispatch) is covered at the bottom.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "platform/rng.hpp"
#include "platform/thread_pool.hpp"
#include "sparse/coo.hpp"
#include "sparse/spmm.hpp"
#include "sparse/spmm_policy.hpp"

namespace snicit::sparse {
namespace {

/// Random CSR with deliberately lumpy structure: ~1/8 of rows empty,
/// ~1/8 fully dense, the rest at the requested density.
CsrMatrix random_weights(Index rows, Index cols, double density,
                         std::uint64_t seed) {
  platform::Rng rng(seed);
  CooMatrix coo(rows, cols);
  for (Index r = 0; r < rows; ++r) {
    const auto shape = rng.next_below(8);
    if (shape == 0) continue;  // empty row
    const double row_density = shape == 1 ? 1.0 : density;
    for (Index c = 0; c < cols; ++c) {
      if (rng.next_bool(row_density)) {
        coo.add(r, c, rng.uniform(-1.5f, 1.5f));
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

DenseMatrix random_activations(std::size_t rows, std::size_t cols,
                               double density, std::uint64_t seed) {
  platform::Rng rng(seed);
  DenseMatrix y(rows, cols);
  for (std::size_t j = 0; j < cols; ++j) {
    for (std::size_t r = 0; r < rows; ++r) {
      if (rng.next_bool(density)) {
        y.at(r, j) = rng.uniform(0.0f, 2.0f);
      }
    }
  }
  return y;
}

bool bit_equal(const DenseMatrix& a, const DenseMatrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * a.rows() * a.cols()) == 0;
}

void expect_close(const DenseMatrix& ref, const DenseMatrix& got,
                  const char* what) {
  ASSERT_EQ(ref.rows(), got.rows());
  ASSERT_EQ(ref.cols(), got.cols());
  for (std::size_t i = 0; i < ref.rows() * ref.cols(); ++i) {
    const float r = ref.data()[i];
    const float g = got.data()[i];
    ASSERT_NEAR(r, g, 1e-4f * std::max(1.0f, std::abs(r)))
        << what << " at flat index " << i;
  }
}

// Batch widths straddling the 8-lane block: below, at, just above, and a
// multi-group non-multiple.
const std::size_t kBatches[] = {1, 2, 3, 5, 7, 8, 9, 16, 20};

class KernelEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(KernelEquivalence, GatherFamilyBitExact) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  platform::Rng rng(seed * 7919 + 1);
  const Index rows = static_cast<Index>(16 + rng.next_below(100));
  const Index cols = static_cast<Index>(16 + rng.next_below(100));
  const auto w = random_weights(rows, cols, 0.2, seed);
  for (std::size_t batch : kBatches) {
    const auto y = random_activations(static_cast<std::size_t>(cols), batch,
                                      0.6, seed + batch);
    DenseMatrix ref(static_cast<std::size_t>(rows), batch);
    spmm_gather(w, y, ref);
    DenseMatrix out(static_cast<std::size_t>(rows), batch);
    spmm_gather_simd(w, y, out);
    EXPECT_TRUE(bit_equal(ref, out)) << "gather_simd batch " << batch;
    out = DenseMatrix(static_cast<std::size_t>(rows), batch);
    spmm_gather_threaded(w, y, out);
    EXPECT_TRUE(bit_equal(ref, out)) << "gather_threaded batch " << batch;
  }
}

TEST_P(KernelEquivalence, ScatterFamilyBitExact) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  platform::Rng rng(seed * 104729 + 3);
  const Index rows = static_cast<Index>(16 + rng.next_below(100));
  const Index cols = static_cast<Index>(16 + rng.next_below(100));
  const auto w = random_weights(rows, cols, 0.2, seed + 1000);
  const auto w_csc = CscMatrix::from_csr(w);
  for (std::size_t batch : kBatches) {
    // Sparse activations so the zero-skip paths (full-skip in scalar,
    // group-skip + neutral zero lanes in blocked) actually diverge.
    const auto y = random_activations(static_cast<std::size_t>(cols), batch,
                                      0.25, seed + 31 * batch);
    DenseMatrix ref(static_cast<std::size_t>(rows), batch);
    spmm_scatter(w_csc, y, ref);
    DenseMatrix out(static_cast<std::size_t>(rows), batch);
    spmm_scatter_simd(w_csc, y, out);
    EXPECT_TRUE(bit_equal(ref, out)) << "scatter_simd batch " << batch;
  }
}

TEST_P(KernelEquivalence, ColumnSubsetVariantsBitExact) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  platform::Rng rng(seed * 65537 + 7);
  const Index rows = static_cast<Index>(16 + rng.next_below(80));
  const Index cols = static_cast<Index>(16 + rng.next_below(80));
  const auto w = random_weights(rows, cols, 0.25, seed + 2000);
  const auto w_csc = CscMatrix::from_csr(w);
  const std::size_t batch = 2 + rng.next_below(24);
  const auto y = random_activations(static_cast<std::size_t>(cols), batch,
                                    0.4, seed + 5);
  // Random strict subset (possibly unsorted order is not exercised here:
  // engines always pass ascending lists).
  std::vector<Index> subset;
  for (std::size_t j = 0; j < batch; ++j) {
    if (rng.next_bool(0.6)) subset.push_back(static_cast<Index>(j));
  }
  if (subset.empty()) subset.push_back(0);

  DenseMatrix ref(static_cast<std::size_t>(rows), batch, 0.5f);
  spmm_gather_cols(w, y, subset, ref);
  DenseMatrix out(static_cast<std::size_t>(rows), batch, 0.5f);
  spmm_gather_cols_simd(w, y, subset, out);
  EXPECT_TRUE(bit_equal(ref, out)) << "gather_cols_simd";
  out = DenseMatrix(static_cast<std::size_t>(rows), batch, 0.5f);
  spmm_gather_cols_threaded(w, y, subset, out);
  EXPECT_TRUE(bit_equal(ref, out)) << "gather_cols_threaded";

  DenseMatrix sref(static_cast<std::size_t>(rows), batch, 0.5f);
  spmm_scatter_cols(w_csc, y, subset, sref);
  DenseMatrix sout(static_cast<std::size_t>(rows), batch, 0.5f);
  spmm_scatter_cols_simd(w_csc, y, subset, sout);
  EXPECT_TRUE(bit_equal(sref, sout)) << "scatter_cols_simd";
}

TEST_P(KernelEquivalence, CrossFamilyBoundedError) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Index rows = 64;
  const Index cols = 96;
  const auto w = random_weights(rows, cols, 0.3, seed + 3000);
  const auto w_csc = CscMatrix::from_csr(w);
  const auto y = random_activations(96, 13, 0.5, seed + 9);
  DenseMatrix ref(64, 13);
  spmm_gather(w, y, ref);
  DenseMatrix out(64, 13);
  spmm_tiled(w, y, out, 5);
  expect_close(ref, out, "tiled vs gather");
  spmm_scatter(w_csc, y, out);
  expect_close(ref, out, "scatter vs gather");
  spmm_scatter_simd(w_csc, y, out);
  expect_close(ref, out, "scatter_simd vs gather");
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelEquivalence, ::testing::Range(1, 13));

TEST(KernelEquivalenceEdge, AllEmptyWeightRows) {
  CooMatrix coo(8, 8);  // no entries at all
  const auto w = CsrMatrix::from_coo(coo);
  const auto w_csc = CscMatrix::from_csr(w);
  const auto y = random_activations(8, 9, 0.9, 11);
  DenseMatrix ref(8, 9, 3.0f);
  DenseMatrix out(8, 9, 7.0f);
  spmm_gather(w, y, ref);
  spmm_gather_simd(w, y, out);
  EXPECT_TRUE(bit_equal(ref, out));
  spmm_scatter(w_csc, y, ref);
  spmm_scatter_simd(w_csc, y, out);
  EXPECT_TRUE(bit_equal(ref, out));
  EXPECT_EQ(out.count_nonzeros(), 0u);
}

TEST(KernelEquivalenceEdge, AllZeroActivations) {
  const auto w = random_weights(32, 32, 0.5, 17);
  const auto w_csc = CscMatrix::from_csr(w);
  DenseMatrix y(32, 12);  // all zeros: scatter group-skip fires everywhere
  DenseMatrix ref(32, 12, 1.0f);
  DenseMatrix out(32, 12, 2.0f);
  spmm_scatter(w_csc, y, ref);
  spmm_scatter_simd(w_csc, y, out);
  EXPECT_TRUE(bit_equal(ref, out));
  spmm_gather(w, y, ref);
  spmm_gather_simd(w, y, out);
  EXPECT_TRUE(bit_equal(ref, out));
}

// --- Fused epilogue --------------------------------------------------------
//
// Contract under test: every `_fused` kernel is *bit-identical* to its
// split counterpart followed by apply_bias_activation on the same
// columns — same accumulation order, epilogue applied per element after
// its chain completes. Signs, clipping at 0 and at ymax, per-row and
// scalar bias all ride along.

std::vector<float> random_bias(std::size_t rows, std::uint64_t seed) {
  platform::Rng rng(seed);
  std::vector<float> b(rows);
  for (auto& v : b) v = rng.uniform(-0.4f, 0.4f);
  return b;
}

TEST_P(KernelEquivalence, FusedFullMatrixBitIdenticalToSplit) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  platform::Rng rng(seed * 31337 + 5);
  const Index rows = static_cast<Index>(16 + rng.next_below(80));
  const Index cols = static_cast<Index>(16 + rng.next_below(80));
  const float ymax = 1.0f;  // low enough that both clip edges fire
  const auto bias = random_bias(static_cast<std::size_t>(rows), seed + 77);
  const BiasAct epi{bias, 0.0f, ymax};
  for (double density : {0.1, 0.6}) {
    const auto w = random_weights(rows, cols, density, seed + 4000);
    const auto w_csc = CscMatrix::from_csr(w);
    for (std::size_t batch : {std::size_t{1}, std::size_t{5}, std::size_t{8},
                              std::size_t{9}, std::size_t{16}}) {
      const auto y = random_activations(static_cast<std::size_t>(cols), batch,
                                        density, seed + batch);
      DenseMatrix split(static_cast<std::size_t>(rows), batch);
      DenseMatrix fused(static_cast<std::size_t>(rows), batch);

      spmm_gather(w, y, split);
      apply_bias_activation(split, bias, ymax);
      spmm_gather_fused(w, y, fused, epi);
      EXPECT_TRUE(bit_equal(split, fused)) << "gather batch " << batch;

      spmm_gather_simd(w, y, split);
      apply_bias_activation(split, bias, ymax);
      spmm_gather_simd_fused(w, y, fused, epi);
      EXPECT_TRUE(bit_equal(split, fused)) << "gather_simd batch " << batch;

      spmm_gather_threaded(w, y, split);
      apply_bias_activation(split, bias, ymax);
      spmm_gather_threaded_fused(w, y, fused, epi);
      EXPECT_TRUE(bit_equal(split, fused))
          << "gather_threaded batch " << batch;

      spmm_tiled(w, y, split, 5);
      apply_bias_activation(split, bias, ymax);
      spmm_tiled_fused(w, y, fused, epi, 5);
      EXPECT_TRUE(bit_equal(split, fused)) << "tiled batch " << batch;

      spmm_scatter(w_csc, y, split);
      apply_bias_activation(split, bias, ymax);
      spmm_scatter_fused(w_csc, y, fused, epi);
      EXPECT_TRUE(bit_equal(split, fused)) << "scatter batch " << batch;

      spmm_scatter_simd(w_csc, y, split);
      apply_bias_activation(split, bias, ymax);
      spmm_scatter_simd_fused(w_csc, y, fused, epi);
      EXPECT_TRUE(bit_equal(split, fused))
          << "scatter_simd batch " << batch;
    }
  }
}

TEST_P(KernelEquivalence, FusedScalarBiasBitIdenticalToSplit) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto w = random_weights(48, 64, 0.3, seed + 5000);
  const auto y = random_activations(64, 9, 0.5, seed + 13);
  const BiasAct epi{{}, -0.2f, 1.5f};  // empty bias selects the scalar arm
  DenseMatrix split(48, 9);
  DenseMatrix fused(48, 9);
  spmm_gather_simd(w, y, split);
  apply_bias_activation(split, -0.2f, 1.5f);
  spmm_gather_simd_fused(w, y, fused, epi);
  EXPECT_TRUE(bit_equal(split, fused));
}

TEST_P(KernelEquivalence, FusedColumnSubsetBitIdenticalToSplit) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  platform::Rng rng(seed * 2741 + 11);
  const Index rows = static_cast<Index>(16 + rng.next_below(64));
  const Index cols = static_cast<Index>(16 + rng.next_below(64));
  const auto w = random_weights(rows, cols, 0.3, seed + 6000);
  const auto w_csc = CscMatrix::from_csr(w);
  const std::size_t batch = 3 + rng.next_below(20);
  const auto y = random_activations(static_cast<std::size_t>(cols), batch,
                                    0.4, seed + 17);
  std::vector<Index> subset;
  for (std::size_t j = 0; j < batch; ++j) {
    if (rng.next_bool(0.6)) subset.push_back(static_cast<Index>(j));
  }
  if (subset.empty()) subset.push_back(0);
  const auto bias = random_bias(static_cast<std::size_t>(rows), seed + 19);
  const BiasAct epi{bias, 0.0f, 1.0f};

  // 0.5f sentinel: columns outside the subset must stay untouched in
  // both modes (and therefore still compare bit-equal).
  DenseMatrix split(static_cast<std::size_t>(rows), batch, 0.5f);
  DenseMatrix fused(static_cast<std::size_t>(rows), batch, 0.5f);

  spmm_gather_cols(w, y, subset, split);
  apply_bias_activation_cols(split, subset, epi);
  spmm_gather_cols_fused(w, y, subset, fused, epi);
  EXPECT_TRUE(bit_equal(split, fused)) << "gather_cols";

  spmm_gather_cols_simd(w, y, subset, split);
  apply_bias_activation_cols(split, subset, epi);
  spmm_gather_cols_simd_fused(w, y, subset, fused, epi);
  EXPECT_TRUE(bit_equal(split, fused)) << "gather_cols_simd";

  spmm_gather_cols_threaded(w, y, subset, split);
  apply_bias_activation_cols(split, subset, epi);
  spmm_gather_cols_threaded_fused(w, y, subset, fused, epi);
  EXPECT_TRUE(bit_equal(split, fused)) << "gather_cols_threaded";

  spmm_scatter_cols(w_csc, y, subset, split);
  apply_bias_activation_cols(split, subset, epi);
  spmm_scatter_cols_fused(w_csc, y, subset, fused, epi);
  EXPECT_TRUE(bit_equal(split, fused)) << "scatter_cols";

  spmm_scatter_cols_simd(w_csc, y, subset, split);
  apply_bias_activation_cols(split, subset, epi);
  spmm_scatter_cols_simd_fused(w_csc, y, subset, fused, epi);
  EXPECT_TRUE(bit_equal(split, fused)) << "scatter_cols_simd";
}

// --- Policy layer ----------------------------------------------------------

TEST(SpmmPolicy, VariantNamesRoundTrip) {
  for (int i = -1; i < kNumSpmmVariants; ++i) {
    const auto v = static_cast<SpmmVariant>(i);
    const auto parsed = parse_spmm_variant(to_string(v));
    ASSERT_TRUE(parsed.has_value()) << to_string(v);
    EXPECT_EQ(*parsed, v);
  }
  EXPECT_FALSE(parse_spmm_variant("").has_value());
  EXPECT_FALSE(parse_spmm_variant("avx512").has_value());
}

TEST(SpmmPolicy, SimdCompiledMatchesBuildFlag) {
#if defined(SNICIT_SIMD)
  EXPECT_TRUE(simd_compiled());
#else
  EXPECT_FALSE(simd_compiled());
#endif
}

TEST(SpmmPolicy, ForcedVariantAlwaysSelected) {
  SpmmProblem p;
  p.rows = 8;
  p.nnz = 16;
  p.batch_cols = 2;
  p.density = 1.0;
  p.has_csc = false;  // even then: forcing is never second-guessed
  SpmmPolicy policy;
  for (int i = 0; i < kNumSpmmVariants; ++i) {
    policy.variant = static_cast<SpmmVariant>(i);
    EXPECT_EQ(select_spmm_variant(p, policy), policy.variant);
  }
}

TEST(SpmmPolicy, AutoNeverPicksScatterWithoutCsc) {
  SpmmPolicy policy;
  SpmmProblem p;
  p.rows = 1024;
  p.nnz = 32 * 1024;
  p.batch_cols = 64;
  p.has_csc = false;
  for (double density : {0.001, 0.05, 0.5, 1.0}) {
    p.density = density;
    const auto v = select_spmm_variant(p, policy);
    EXPECT_NE(v, SpmmVariant::kScatter) << density;
    EXPECT_NE(v, SpmmVariant::kScatterSimd) << density;
  }
}

TEST(SpmmPolicy, CostModelPrefersBlockedGatherOnWideDenseBatches) {
  SpmmProblem p;
  p.rows = 1024;
  p.nnz = 32 * 1024;
  p.batch_cols = 64;
  p.density = 1.0;
  p.has_csc = true;
  SpmmPolicy policy;
  EXPECT_LT(spmm_variant_cost(SpmmVariant::kGatherSimd, p, policy),
            spmm_variant_cost(SpmmVariant::kGatherScalar, p, policy));
  EXPECT_LT(spmm_variant_cost(SpmmVariant::kGatherSimd, p, policy),
            spmm_variant_cost(SpmmVariant::kScatterSimd, p, policy));
  // Narrow batches cannot fill the lanes: blocked pricing falls back to
  // scalar and auto selection stays with a scalar-cost arm.
  p.batch_cols = 2;
  EXPECT_DOUBLE_EQ(spmm_variant_cost(SpmmVariant::kGatherSimd, p, policy),
                   spmm_variant_cost(SpmmVariant::kGatherScalar, p, policy));
}

TEST(SpmmPolicy, FromEnvParsesVariantAndTile) {
  ::setenv("SNICIT_SPMM", "scatter_simd", 1);
  ::setenv("SNICIT_SPMM_TILE", "24", 1);
  const auto policy = SpmmPolicy::from_env();
  EXPECT_EQ(policy.variant, SpmmVariant::kScatterSimd);
  EXPECT_EQ(policy.tile, 24u);
  ::setenv("SNICIT_SPMM", "not-a-kernel", 1);
  ::setenv("SNICIT_SPMM_TILE", "9999", 1);  // out of [1, 64]: ignored
  const auto junk = SpmmPolicy::from_env();
  EXPECT_EQ(junk.variant, SpmmVariant::kAuto);
  EXPECT_EQ(junk.tile, 16u);
  ::unsetenv("SNICIT_SPMM");
  ::unsetenv("SNICIT_SPMM_TILE");
}

TEST(SpmmPolicy, SpecParsingCoversVariantEpilogueAndCombined) {
  SpmmPolicy p;
  ASSERT_EQ(p.epilogue, SpmmEpilogue::kFused);  // fused is the default

  // VARIANT+EPILOGUE sets both.
  EXPECT_TRUE(apply_spmm_spec("gather_simd+split", p));
  EXPECT_EQ(p.variant, SpmmVariant::kGatherSimd);
  EXPECT_EQ(p.epilogue, SpmmEpilogue::kSplit);

  // Bare epilogue flips the mode, leaves the variant alone.
  EXPECT_TRUE(apply_spmm_spec("fused", p));
  EXPECT_EQ(p.variant, SpmmVariant::kGatherSimd);
  EXPECT_EQ(p.epilogue, SpmmEpilogue::kFused);

  // Bare variant keeps whatever epilogue was in force.
  EXPECT_TRUE(apply_spmm_spec("split", p));
  EXPECT_TRUE(apply_spmm_spec("scatter", p));
  EXPECT_EQ(p.variant, SpmmVariant::kScatter);
  EXPECT_EQ(p.epilogue, SpmmEpilogue::kSplit);

  // Junk in either half rejects without touching the policy.
  const SpmmPolicy before = p;
  EXPECT_FALSE(apply_spmm_spec("gather+turbo", p));
  EXPECT_FALSE(apply_spmm_spec("warp+fused", p));
  EXPECT_FALSE(apply_spmm_spec("gather+", p));
  EXPECT_FALSE(apply_spmm_spec("", p));
  EXPECT_EQ(p.variant, before.variant);
  EXPECT_EQ(p.epilogue, before.epilogue);
}

TEST(SpmmPolicy, FromEnvParsesEpilogueSpec) {
  ::setenv("SNICIT_SPMM", "gather_threaded+split", 1);
  auto policy = SpmmPolicy::from_env();
  EXPECT_EQ(policy.variant, SpmmVariant::kGatherThreaded);
  EXPECT_EQ(policy.epilogue, SpmmEpilogue::kSplit);
  ::setenv("SNICIT_SPMM", "split", 1);
  policy = SpmmPolicy::from_env();
  EXPECT_EQ(policy.variant, SpmmVariant::kAuto);
  EXPECT_EQ(policy.epilogue, SpmmEpilogue::kSplit);
  ::unsetenv("SNICIT_SPMM");
}

TEST(SpmmPolicy, EpilogueCostFreeWhenFusedUniformWhenSplit) {
  SpmmProblem p;
  p.rows = 1024;
  p.nnz = 32 * 1024;
  p.batch_cols = 64;
  p.density = 0.5;
  p.has_csc = true;
  SpmmPolicy policy;

  // No epilogue on the call: no term, either mode.
  p.has_epilogue = false;
  EXPECT_DOUBLE_EQ(spmm_epilogue_cost(p, policy), 0.0);

  // Fused epilogue rides the store for free.
  p.has_epilogue = true;
  policy.epilogue = SpmmEpilogue::kFused;
  EXPECT_DOUBLE_EQ(spmm_epilogue_cost(p, policy), 0.0);

  // Split pays the second sweep — and pays it identically whatever
  // variant is under consideration, so the cost-model argmin (the
  // variant choice) is epilogue-invariant.
  policy.epilogue = SpmmEpilogue::kSplit;
  const double split_cost = spmm_epilogue_cost(p, policy);
  EXPECT_GT(split_cost, 0.0);
  SpmmPolicy fused_policy;
  for (int i = 0; i < kNumSpmmVariants; ++i) {
    const auto v = static_cast<SpmmVariant>(i);
    EXPECT_DOUBLE_EQ(spmm_variant_cost(v, p, policy) - split_cost,
                     spmm_variant_cost(v, p, fused_policy))
        << to_string(v);
  }
}

TEST(SpmmDispatch, FusedEntryPointBitIdenticalAcrossModes) {
  const auto w = random_weights(48, 64, 0.3, 47);
  const auto w_csc = CscMatrix::from_csr(w);
  const auto y = random_activations(64, 11, 0.5, 53);
  std::vector<float> bias(48);
  for (std::size_t r = 0; r < 48; ++r) {
    bias[r] = 0.1f * static_cast<float>(r % 7) - 0.3f;
  }
  const BiasAct epi{bias, 0.0f, 1.0f};
  // Manual split reference.
  DenseMatrix ref(48, 11);
  spmm_gather(w, y, ref);
  apply_bias_activation(ref, bias, 1.0f);

  for (int i = 0; i < kNumSpmmVariants; ++i) {
    SpmmPolicy policy;
    policy.variant = static_cast<SpmmVariant>(i);
    policy.epilogue = SpmmEpilogue::kFused;
    DenseMatrix fused(48, 11);
    const auto ran_f =
        spmm_dispatch_fused(w, &w_csc, y, fused, 0.5, epi, policy);
    EXPECT_EQ(ran_f, policy.variant);
    policy.epilogue = SpmmEpilogue::kSplit;
    DenseMatrix split(48, 11);
    const auto ran_s =
        spmm_dispatch_fused(w, &w_csc, y, split, 0.5, epi, policy);
    EXPECT_EQ(ran_s, policy.variant);
    // The two modes of the same variant are bit-identical; both track
    // the scalar reference to cross-family tolerance.
    EXPECT_TRUE(bit_equal(fused, split)) << to_string(policy.variant);
    expect_close(ref, fused, to_string(policy.variant));
  }
}

TEST(SpmmDispatch, FusedColumnSubsetBitIdenticalAcrossModes) {
  const auto w = random_weights(40, 56, 0.3, 59);
  const auto w_csc = CscMatrix::from_csr(w);
  const auto y = random_activations(56, 14, 0.5, 61);
  const std::vector<Index> subset = {1, 2, 5, 6, 10, 13};
  std::vector<float> bias(40, 0.05f);
  const BiasAct epi{bias, 0.0f, 2.0f};
  for (int i = 0; i < kNumSpmmVariants; ++i) {
    SpmmPolicy policy;
    policy.variant = static_cast<SpmmVariant>(i);
    policy.epilogue = SpmmEpilogue::kFused;
    DenseMatrix fused(40, 14, 0.5f);
    spmm_dispatch_cols_fused(w, &w_csc, y, subset, fused, 0.5, epi, policy);
    policy.epilogue = SpmmEpilogue::kSplit;
    DenseMatrix split(40, 14, 0.5f);
    spmm_dispatch_cols_fused(w, &w_csc, y, subset, split, 0.5, epi, policy);
    EXPECT_TRUE(bit_equal(fused, split)) << to_string(policy.variant);
    // Columns outside the subset keep their sentinel in both modes.
    EXPECT_FLOAT_EQ(fused.at(0, 0), 0.5f);
    EXPECT_FLOAT_EQ(split.at(0, 0), 0.5f);
  }
}

TEST(SpmmDispatch, EveryForcedVariantMatchesReference) {
  const auto w = random_weights(48, 64, 0.3, 23);
  const auto w_csc = CscMatrix::from_csr(w);
  const auto y = random_activations(64, 11, 0.5, 29);
  DenseMatrix ref(48, 11);
  spmm_gather(w, y, ref);
  SpmmPolicy policy;
  for (int i = 0; i < kNumSpmmVariants; ++i) {
    policy.variant = static_cast<SpmmVariant>(i);
    DenseMatrix out(48, 11);
    const auto ran = spmm_dispatch(w, &w_csc, y, out, 0.5, policy);
    EXPECT_EQ(ran, policy.variant);
    expect_close(ref, out, to_string(policy.variant));
  }
  // Auto dispatch must also match, whatever it picks.
  policy.variant = SpmmVariant::kAuto;
  DenseMatrix out(48, 11);
  const auto ran = spmm_dispatch(w, &w_csc, y, out, 0.5, policy);
  EXPECT_NE(ran, SpmmVariant::kAuto);
  expect_close(ref, out, "auto dispatch");
}

TEST(SpmmDispatch, ColumnSubsetForcedVariantsMatchReference) {
  const auto w = random_weights(40, 56, 0.3, 31);
  const auto w_csc = CscMatrix::from_csr(w);
  const auto y = random_activations(56, 14, 0.5, 37);
  const std::vector<Index> subset = {0, 2, 3, 7, 8, 9, 13};
  DenseMatrix ref(40, 14);
  spmm_gather_cols(w, y, subset, ref);
  SpmmPolicy policy;
  for (int i = 0; i < kNumSpmmVariants; ++i) {
    policy.variant = static_cast<SpmmVariant>(i);
    DenseMatrix out(40, 14);
    const auto ran =
        spmm_dispatch_cols(w, &w_csc, y, subset, out, 0.5, policy);
    EXPECT_EQ(ran, policy.variant);
    for (Index jc : subset) {
      for (std::size_t r = 0; r < 40; ++r) {
        const float e = ref.at(r, static_cast<std::size_t>(jc));
        const float g = out.at(r, static_cast<std::size_t>(jc));
        ASSERT_NEAR(e, g, 1e-4f * std::max(1.0f, std::abs(e)))
            << to_string(policy.variant);
      }
    }
  }
}

TEST(SpmmDispatch, SerialRegionStillDispatchesCorrectly) {
  // Inside a serial region the model prices everything at one slot; the
  // dispatch must still run and match (this is the 1-thread leg of the
  // 1-vs-N determinism guarantee; kernels are order-deterministic, so the
  // outputs are bitwise identical across pool sizes).
  const auto w = random_weights(32, 48, 0.4, 41);
  const auto w_csc = CscMatrix::from_csr(w);
  const auto y = random_activations(48, 16, 0.7, 43);
  DenseMatrix pooled(32, 16);
  spmm_dispatch(w, &w_csc, y, pooled, 0.7, SpmmPolicy{});
  platform::ScopedSerialRegion serial;
  DenseMatrix inline_out(32, 16);
  spmm_dispatch(w, &w_csc, y, inline_out, 0.7, SpmmPolicy{});
  // Variant choice may differ between the two regimes; results may not.
  expect_close(pooled, inline_out, "serial vs pooled dispatch");
}

}  // namespace
}  // namespace snicit::sparse
