#include "dnn/harness.hpp"

#include <gtest/gtest.h>

#include "baselines/serial.hpp"
#include "baselines/xy2021.hpp"
#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "radixnet/radixnet.hpp"
#include "snicit/engine.hpp"

namespace snicit::dnn {
namespace {

struct Workload {
  SparseDnn net;
  DenseMatrix input;
};

Workload make_workload() {
  radixnet::RadixNetOptions opt;
  opt.neurons = 96;
  opt.layers = 12;
  opt.fanin = 8;
  opt.seed = 5;
  auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = 96;
  in_opt.batch = 24;
  in_opt.seed = 6;
  auto input = data::make_sdgc_input(in_opt).features;
  return {std::move(net), std::move(input)};
}

TEST(Harness, ComparesEnginesAgainstFirst) {
  auto wl = make_workload();
  ReferenceEngine golden;
  baselines::Xy2021Engine xy;
  core::SnicitParams params;
  params.threshold_layer = 6;
  core::SnicitEngine snicit(params);

  const auto cmp = compare_engines("test-workload", {&golden, &xy, &snicit},
                                   wl.net, wl.input);
  ASSERT_EQ(cmp.rows.size(), 3u);
  EXPECT_EQ(cmp.rows[0].engine, "reference");
  EXPECT_DOUBLE_EQ(cmp.rows[0].speedup_vs_baseline, 1.0);
  EXPECT_TRUE(cmp.all_match());
  for (const auto& row : cmp.rows) {
    EXPECT_GT(row.total_ms, 0.0);
  }
  EXPECT_LE(cmp.rows[2].max_abs_diff, 5e-3f);
}

TEST(Harness, TableContainsEveryEngine) {
  auto wl = make_workload();
  ReferenceEngine golden;
  baselines::SerialEngine serial;
  const auto cmp =
      compare_engines("tbl", {&golden, &serial}, wl.net, wl.input);
  const auto table = cmp.to_table();
  EXPECT_NE(table.find("reference"), std::string::npos);
  EXPECT_NE(table.find("SDGC-serial"), std::string::npos);
  EXPECT_NE(table.find("match"), std::string::npos);
}

TEST(Harness, JsonIsWellFormedAndComplete) {
  auto wl = make_workload();
  ReferenceEngine golden;
  core::SnicitParams params;
  params.threshold_layer = 4;
  core::SnicitEngine snicit(params);
  const auto cmp =
      compare_engines("json-check", {&golden, &snicit}, wl.net, wl.input);
  const auto json = cmp.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"workload\":\"json-check\""), std::string::npos);
  EXPECT_NE(json.find("\"engines\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"SNICIT\""), std::string::npos);
  EXPECT_NE(json.find("\"categories_match\":true"), std::string::npos);
  // SNICIT diagnostics surface in the JSON.
  EXPECT_NE(json.find("\"centroids\":"), std::string::npos);
}

TEST(Harness, RepeatsKeepFastestRun) {
  auto wl = make_workload();
  ReferenceEngine golden;
  const auto once =
      compare_engines("r1", {&golden}, wl.net, wl.input, /*repeats=*/1);
  const auto thrice =
      compare_engines("r3", {&golden}, wl.net, wl.input, /*repeats=*/3);
  // Not a strict inequality (timing noise), but both must be positive and
  // the 3-repeat run should not be slower by an order of magnitude.
  EXPECT_GT(once.rows[0].total_ms, 0.0);
  EXPECT_GT(thrice.rows[0].total_ms, 0.0);
  EXPECT_LT(thrice.rows[0].total_ms, once.rows[0].total_ms * 10 + 50.0);
}

}  // namespace
}  // namespace snicit::dnn
