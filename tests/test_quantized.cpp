#include "sparse/quantized.hpp"

#include <gtest/gtest.h>

#include "platform/rng.hpp"
#include "radixnet/radixnet.hpp"
#include "sparse/spmm.hpp"

namespace snicit::sparse {
namespace {

CsrMatrix random_csr(Index n, double density, std::uint64_t seed) {
  platform::Rng rng(seed);
  CooMatrix coo(n, n);
  for (Index r = 0; r < n; ++r) {
    for (Index c = 0; c < n; ++c) {
      if (rng.next_bool(density)) {
        coo.add(r, c, rng.uniform(-0.5f, 0.5f));
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

TEST(Quantized, StructureShared) {
  const auto w = random_csr(32, 0.2, 1);
  const auto q = QuantizedCsr::from_csr(w);
  EXPECT_EQ(q.rows(), 32);
  EXPECT_EQ(q.nnz(), w.nnz());
  EXPECT_EQ(q.row_ptr(), w.row_ptr());
  EXPECT_EQ(q.col_idx(), w.col_idx());
}

TEST(Quantized, ErrorBoundedByHalfScale) {
  const auto w = random_csr(48, 0.3, 2);
  const auto q = QuantizedCsr::from_csr(w);
  // Symmetric int8: reconstruction error <= scale/2 per entry.
  float max_half_scale = 0.0f;
  for (float s : q.row_scale()) {
    max_half_scale = std::max(max_half_scale, s / 2.0f);
  }
  EXPECT_LE(q.max_quantization_error(w), max_half_scale + 1e-7f);
}

TEST(Quantized, DequantizeRoundTripsStructure) {
  const auto w = random_csr(24, 0.25, 3);
  const auto back = QuantizedCsr::from_csr(w).dequantize();
  EXPECT_EQ(back.nnz(), w.nnz());
  EXPECT_EQ(back.col_idx(), w.col_idx());
  for (std::size_t k = 0; k < w.values().size(); ++k) {
    EXPECT_NEAR(back.values()[k], w.values()[k], 0.01f);
  }
}

TEST(Quantized, ExtremesQuantizeExactly) {
  // A row's max-magnitude entry maps to +-127 exactly, so it reconstructs
  // with zero error.
  CooMatrix coo(1, 3);
  coo.add(0, 0, 0.5f);
  coo.add(0, 1, -0.5f);
  coo.add(0, 2, 0.25f);
  const auto q = QuantizedCsr::from_csr(CsrMatrix::from_coo(coo));
  EXPECT_EQ(q.values()[0], 127);
  EXPECT_EQ(q.values()[1], -127);
  const auto back = q.dequantize();
  EXPECT_FLOAT_EQ(back.values()[0], 0.5f);
  EXPECT_FLOAT_EQ(back.values()[1], -0.5f);
}

TEST(Quantized, ZeroRowGetsUnitScale) {
  CooMatrix coo(2, 2);
  coo.add(0, 0, 0.0f);  // explicit zero entry
  const auto q = QuantizedCsr::from_csr(CsrMatrix::from_coo(coo));
  EXPECT_FLOAT_EQ(q.row_scale()[0], 1.0f);
  EXPECT_EQ(q.values()[0], 0);
}

TEST(Quantized, SpmmCloseToFloatSpmm) {
  const auto w = random_csr(64, 0.2, 5);
  const auto q = QuantizedCsr::from_csr(w);
  platform::Rng rng(6);
  DenseMatrix y(64, 8);
  for (std::size_t i = 0; i < 64 * 8; ++i) {
    y.data()[i] = rng.uniform(0.0f, 1.0f);
  }
  DenseMatrix exact(64, 8);
  DenseMatrix approx(64, 8);
  spmm_gather(w, y, exact);
  spmm_quantized(q, y, approx);
  // ~13 nonzeros/row, error per product <= scale/2 * |y| <= 0.002.
  EXPECT_LE(DenseMatrix::max_abs_diff(exact, approx), 0.05f);
  EXPECT_GT(DenseMatrix::max_abs_diff(exact, approx), 0.0f);  // lossy
}

TEST(Quantized, PayloadFourTimesSmallerThanFloat) {
  radixnet::RadixNetOptions opt;
  opt.neurons = 256;
  opt.layers = 1;
  opt.fanin = 32;
  const auto net = radixnet::make_radixnet(opt);
  const auto q = QuantizedCsr::from_csr(net.weight(0));
  const std::size_t float_payload = net.weight(0).values().size() * 4;
  EXPECT_LT(q.payload_bytes(), float_payload / 2);
}

}  // namespace
}  // namespace snicit::sparse
