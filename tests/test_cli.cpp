#include "platform/cli.hpp"

#include <gtest/gtest.h>

namespace snicit::platform {
namespace {

CliArgs parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EmptyArguments) {
  const auto args = parse({});
  EXPECT_EQ(args.program(), "prog");
  EXPECT_TRUE(args.positionals().empty());
  EXPECT_FALSE(args.has("anything"));
  EXPECT_EQ(args.get_int("n", 7), 7);
}

TEST(Cli, KeyValuePairs) {
  const auto args = parse({"--neurons", "1024", "--name", "run1"});
  EXPECT_EQ(args.get_int("neurons", 0), 1024);
  EXPECT_EQ(args.get("name", ""), "run1");
  EXPECT_TRUE(args.has("neurons"));
}

TEST(Cli, EqualsSyntax) {
  const auto args = parse({"--batch=512", "--scale=0.5"});
  EXPECT_EQ(args.get_int("batch", 0), 512);
  EXPECT_DOUBLE_EQ(args.get_double("scale", 0.0), 0.5);
}

TEST(Cli, BareFlags) {
  const auto args = parse({"--verbose", "--dry-run"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.has("dry-run"));
  EXPECT_EQ(args.get("verbose", "fallback"), "fallback");  // no value
}

TEST(Cli, FlagFollowedByOptionDoesNotSwallowIt) {
  const auto args = parse({"--verbose", "--batch", "64"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("verbose", "none"), "none");
  EXPECT_EQ(args.get_int("batch", 0), 64);
}

TEST(Cli, NegativeNumbersAreValues) {
  const auto args = parse({"--bias", "-0.3"});
  EXPECT_DOUBLE_EQ(args.get_double("bias", 0.0), -0.3);
}

TEST(Cli, PositionalsPreserveOrder) {
  const auto args = parse({"alpha", "--k", "v", "beta", "gamma"});
  ASSERT_EQ(args.positionals().size(), 3u);
  EXPECT_EQ(args.positional(0, ""), "alpha");
  EXPECT_EQ(args.positional(1, ""), "beta");
  EXPECT_EQ(args.positional(2, ""), "gamma");
  EXPECT_EQ(args.positional(9, "none"), "none");
}

TEST(Cli, LastOccurrenceWins) {
  const auto args = parse({"--b", "10", "--b", "20"});
  EXPECT_EQ(args.get_int("b", 0), 20);
}

TEST(Cli, MalformedNumberFallsBack) {
  const auto args = parse({"--n", "abc"});
  EXPECT_EQ(args.get_int("n", 5), 5);
  EXPECT_DOUBLE_EQ(args.get_double("n", 1.5), 1.5);
}

TEST(Cli, IntListParsesCsv) {
  const auto args = parse({"--workers", "1,2,4,8"});
  EXPECT_EQ(args.get_int_list("workers", {}),
            (std::vector<std::int64_t>{1, 2, 4, 8}));
}

TEST(Cli, IntListSingleValueAndEqualsForm) {
  const auto args = parse({"--workers=16"});
  EXPECT_EQ(args.get_int_list("workers", {1}),
            (std::vector<std::int64_t>{16}));
}

TEST(Cli, IntListAbsentUsesFallback) {
  const auto args = parse({"--other", "3"});
  EXPECT_EQ(args.get_int_list("workers", {1, 2}),
            (std::vector<std::int64_t>{1, 2}));
}

TEST(Cli, IntListSkipsMalformedElements) {
  const auto args = parse({"--workers", "1,x,4"});
  EXPECT_EQ(args.get_int_list("workers", {}),
            (std::vector<std::int64_t>{1, 4}));
  const auto all_bad = parse({"--workers", "x,y"});
  EXPECT_EQ(all_bad.get_int_list("workers", {7}),
            (std::vector<std::int64_t>{7}));
}

TEST(Cli, OptionNamesPreserveOrderAndDuplicates) {
  const auto args = parse({"--b", "1", "--a", "--b", "2"});
  EXPECT_EQ(args.option_names(),
            (std::vector<std::string>{"b", "a", "b"}));
}

TEST(Cli, UnknownOptionsEmptyWhenAllKnown) {
  const auto args = parse({"--engine", "snicit", "--batch", "64"});
  EXPECT_TRUE(args.unknown_options({"engine", "batch", "threshold"}).empty());
}

TEST(Cli, UnknownOptionsReportsTypos) {
  // The motivating failure: "--worker 4" (singular) must not silently run
  // with the default worker count.
  const auto args = parse({"--worker", "4", "--engine", "snicit"});
  EXPECT_EQ(args.unknown_options({"engine", "workers"}),
            (std::vector<std::string>{"worker"}));
}

TEST(Cli, UnknownOptionsDeduplicatesAndPreservesOrder) {
  const auto args = parse({"--bogus", "--engine", "x", "--bogus", "--oops"});
  EXPECT_EQ(args.unknown_options({"engine"}),
            (std::vector<std::string>{"bogus", "oops"}));
}

TEST(Cli, UnknownOptionsSeesEqualsFormAndBareFlags) {
  const auto args = parse({"--batch=64", "--dry-run"});
  EXPECT_EQ(args.unknown_options({"batch"}),
            (std::vector<std::string>{"dry-run"}));
  EXPECT_EQ(args.unknown_options({}),
            (std::vector<std::string>{"batch", "dry-run"}));
}

TEST(Cli, UnknownOptionsIgnoresPositionals) {
  const auto args = parse({"run", "--engine", "snicit", "extra"});
  EXPECT_TRUE(args.unknown_options({"engine"}).empty());
}

}  // namespace
}  // namespace snicit::platform
