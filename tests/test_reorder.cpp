#include "snicit/reorder.hpp"

#include <gtest/gtest.h>

#include <set>

#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "platform/rng.hpp"
#include "radixnet/radixnet.hpp"
#include "snicit/postconv.hpp"
#include "snicit/recovery.hpp"

namespace snicit::core {
namespace {

/// Small converted batch: columns 0 and 3 centroids, others residues.
CompressedBatch example_batch() {
  DenseMatrix y(8, 6);
  platform::Rng rng(1);
  for (std::size_t j = 0; j < 6; ++j) {
    const float base = (j % 2 == 0) ? 1.0f : 5.0f;
    for (std::size_t r = 0; r < 8; ++r) {
      y.at(r, j) = base + (rng.next_bool(0.2) ? 0.5f : 0.0f);
    }
  }
  return convert_to_compressed(y, {0, 3}, 0.0f);
}

TEST(Reorder, PermutationIsBijective) {
  const auto batch = example_batch();
  const auto perm = cluster_order(batch);
  ASSERT_EQ(perm.size(), 6u);
  std::set<Index> seen(perm.forward.begin(), perm.forward.end());
  EXPECT_EQ(seen.size(), 6u);
  for (std::size_t j = 0; j < 6; ++j) {
    EXPECT_EQ(perm.inverse[static_cast<std::size_t>(perm.forward[j])],
              static_cast<Index>(j));
  }
}

TEST(Reorder, CentroidsLeadTheirClusters) {
  const auto batch = example_batch();
  const auto perm = cluster_order(batch);
  const auto reordered = permute_batch(batch, perm);
  // After reordering: a centroid appears, then all its residues, before
  // the next centroid. Verify each column's mapper points backward to the
  // most recent centroid.
  Index current_centroid = -1;
  for (std::size_t j = 0; j < reordered.batch(); ++j) {
    if (reordered.is_centroid(j)) {
      current_centroid = static_cast<Index>(j);
    } else {
      EXPECT_EQ(reordered.mapper[j], current_centroid);
    }
  }
}

TEST(Reorder, PermuteUnpermuteRoundTrip) {
  platform::Rng rng(4);
  DenseMatrix y(5, 9);
  for (std::size_t i = 0; i < 45; ++i) {
    y.data()[i] = rng.uniform(-1.0f, 1.0f);
  }
  const auto batch = convert_to_compressed(y, {0, 4}, 0.0f);
  const auto perm = cluster_order(batch);
  const auto round =
      unpermute_columns(permute_columns(y, perm), perm);
  EXPECT_FLOAT_EQ(DenseMatrix::max_abs_diff(round, y), 0.0f);
}

TEST(Reorder, PermutedBatchRecoversSameResults) {
  // Running post-convergence on the permuted batch and un-permuting the
  // recovered output must equal the unpermuted pipeline's output.
  radixnet::RadixNetOptions opt;
  opt.neurons = 64;
  opt.layers = 8;
  opt.fanin = 8;
  opt.seed = 9;
  const auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = 64;
  in_opt.batch = 20;
  in_opt.seed = 10;
  const auto input = data::make_sdgc_input(in_opt).features;
  const auto y4 = dnn::reference_forward(net, input, 0, 4);

  auto plain = convert_to_compressed(y4, {0, 1, 2}, 0.0f);
  const auto perm = cluster_order(plain);
  auto permuted = permute_batch(plain, perm);

  DenseMatrix scratch(y4.rows(), y4.cols());
  for (std::size_t l = 4; l < 8; ++l) {
    post_convergence_layer(net.weight(l), net.bias(l), net.ymax(), 0.0f,
                           plain, scratch);
    plain.refresh_ne_idx();
    post_convergence_layer(net.weight(l), net.bias(l), net.ymax(), 0.0f,
                           permuted, scratch);
    permuted.refresh_ne_idx();
  }
  const auto a = recover_results(plain);
  const auto b = unpermute_columns(recover_results(permuted), perm);
  EXPECT_FLOAT_EQ(DenseMatrix::max_abs_diff(a, b), 0.0f);
}

TEST(Reorder, IdentityDetection) {
  // A batch whose centroids already lead their clusters in order can
  // still produce a non-identity order; just verify the predicate works.
  BatchPermutation ident;
  ident.forward = {0, 1, 2};
  ident.inverse = {0, 1, 2};
  EXPECT_TRUE(ident.is_identity());
  BatchPermutation swapped;
  swapped.forward = {1, 0};
  swapped.inverse = {1, 0};
  EXPECT_FALSE(swapped.is_identity());
}

}  // namespace
}  // namespace snicit::core
