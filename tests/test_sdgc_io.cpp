#include "radixnet/sdgc_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "radixnet/radixnet.hpp"

namespace snicit::radixnet {
namespace {

class SdgcIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("snicit_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string prefix(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(SdgcIoTest, NetworkRoundTrip) {
  RadixNetOptions opt;
  opt.neurons = 64;
  opt.layers = 3;
  opt.fanin = 4;
  opt.bias = -0.2f;
  const auto net = make_radixnet(opt);
  save_network_tsv(net, prefix("n64"));
  const auto loaded =
      load_network_tsv(prefix("n64"), 64, 3, -0.2f, net.ymax());

  ASSERT_EQ(loaded.num_layers(), net.num_layers());
  EXPECT_EQ(loaded.neurons(), net.neurons());
  for (std::size_t l = 0; l < 3; ++l) {
    EXPECT_EQ(loaded.weight(l).row_ptr(), net.weight(l).row_ptr());
    EXPECT_EQ(loaded.weight(l).col_idx(), net.weight(l).col_idx());
    // Values survive the %.9g text round trip exactly for floats.
    ASSERT_EQ(loaded.weight(l).values().size(),
              net.weight(l).values().size());
    for (std::size_t k = 0; k < net.weight(l).values().size(); ++k) {
      EXPECT_FLOAT_EQ(loaded.weight(l).values()[k],
                      net.weight(l).values()[k]);
    }
  }
}

TEST_F(SdgcIoTest, MatrixRoundTripPreservesSparsityPattern) {
  sparse::DenseMatrix m(8, 5);
  m.at(0, 0) = 1.25f;
  m.at(7, 4) = -3.5f;
  m.at(3, 2) = 0.015625f;
  save_matrix_tsv(m, prefix("mat.tsv"));
  const auto loaded = load_matrix_tsv(prefix("mat.tsv"), 8, 5);
  EXPECT_FLOAT_EQ(sparse::DenseMatrix::max_abs_diff(m, loaded), 0.0f);
}

TEST_F(SdgcIoTest, MissingFileThrows) {
  EXPECT_THROW(load_matrix_tsv(prefix("nope.tsv"), 4, 4),
               std::runtime_error);
  EXPECT_THROW(load_network_tsv(prefix("nope"), 4, 1, 0.0f, 1.0f),
               std::runtime_error);
}

TEST_F(SdgcIoTest, OutOfRangeIndexThrows) {
  {
    std::FILE* f = std::fopen(prefix("bad.tsv").c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "9\t1\t1.0\n");  // row 9 > rows=4
    std::fclose(f);
  }
  EXPECT_THROW(load_matrix_tsv(prefix("bad.tsv"), 4, 4),
               std::runtime_error);
}

TEST_F(SdgcIoTest, OneIndexedOnDisk) {
  sparse::DenseMatrix m(2, 2);
  m.at(0, 0) = 2.0f;
  save_matrix_tsv(m, prefix("one.tsv"));
  std::FILE* f = std::fopen(prefix("one.tsv").c_str(), "r");
  ASSERT_NE(f, nullptr);
  int r = 0;
  int c = 0;
  float v = 0.0f;
  ASSERT_EQ(std::fscanf(f, "%d\t%d\t%f", &r, &c, &v), 3);
  std::fclose(f);
  EXPECT_EQ(r, 1);  // SDGC files are 1-indexed
  EXPECT_EQ(c, 1);
  EXPECT_FLOAT_EQ(v, 2.0f);
}

TEST_F(SdgcIoTest, CategoriesRoundTrip) {
  const std::vector<int> cats = {1, 0, 0, 1, 1, 0};
  save_categories_tsv(cats, prefix("cats.tsv"));
  EXPECT_EQ(load_categories_tsv(prefix("cats.tsv"), 6), cats);
}

TEST_F(SdgcIoTest, CategoriesFileListsActiveIdsOneIndexed) {
  save_categories_tsv({0, 1, 0, 1}, prefix("ids.tsv"));
  std::FILE* f = std::fopen(prefix("ids.tsv").c_str(), "r");
  ASSERT_NE(f, nullptr);
  int a = 0;
  int b = 0;
  ASSERT_EQ(std::fscanf(f, "%d %d", &a, &b), 2);
  std::fclose(f);
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 4);
}

TEST_F(SdgcIoTest, CategoriesOutOfRangeThrows) {
  save_categories_tsv({0, 0, 1}, prefix("far.tsv"));
  EXPECT_THROW(load_categories_tsv(prefix("far.tsv"), 2),
               std::runtime_error);
}

// --- Malformed-file corpus: every reject path of the hardened loaders
// returns its typed code through the try_* API (and the legacy wrappers
// throw the matching ErrorException). ---

class SdgcIoCorpusTest : public SdgcIoTest {
 protected:
  void write_file(const std::string& name, const std::string& content) {
    std::FILE* f = std::fopen(prefix(name).c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
  }
};

TEST_F(SdgcIoCorpusTest, MissingFilesReportTypedCodes) {
  EXPECT_EQ(try_load_matrix_tsv(prefix("nope.tsv"), 4, 4).code(),
            platform::ErrorCode::kBadInput);
  EXPECT_EQ(try_load_network_tsv(prefix("nope"), 4, 1, 0.0f, 1.0f).code(),
            platform::ErrorCode::kBadModelFile);
  EXPECT_EQ(try_load_categories_tsv(prefix("nope.tsv"), 4).code(),
            platform::ErrorCode::kBadInput);
}

TEST_F(SdgcIoCorpusTest, NetworkBadArgumentsAreBadInput) {
  EXPECT_EQ(try_load_network_tsv(prefix("x"), 0, 1, 0.0f, 1.0f).code(),
            platform::ErrorCode::kBadInput);
  EXPECT_EQ(try_load_network_tsv(prefix("x"), 4, 0, 0.0f, 1.0f).code(),
            platform::ErrorCode::kBadInput);
}

TEST_F(SdgcIoCorpusTest, NetworkTrailingJunkRejected) {
  write_file("junk-l1.tsv", "1\t1\t0.5\n2\t2\t0.25\ngarbage here\n");
  const auto result =
      try_load_network_tsv(prefix("junk"), 4, 1, 0.0f, 1.0f);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), platform::ErrorCode::kBadModelFile);
  EXPECT_NE(result.error().message.find("trailing junk"),
            std::string::npos);
}

TEST_F(SdgcIoCorpusTest, NetworkTruncatedRecordRejected) {
  write_file("trunc-l1.tsv", "1\t1\t0.5\n2\t2\n");  // missing weight field
  const auto result =
      try_load_network_tsv(prefix("trunc"), 4, 1, 0.0f, 1.0f);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), platform::ErrorCode::kBadModelFile);
  EXPECT_NE(result.error().message.find("truncated"), std::string::npos);
}

TEST_F(SdgcIoCorpusTest, NetworkNonFiniteWeightRejected) {
  write_file("nan-l1.tsv", "1\t1\tnan\n");
  EXPECT_EQ(try_load_network_tsv(prefix("nan"), 4, 1, 0.0f, 1.0f).code(),
            platform::ErrorCode::kBadModelFile);
  write_file("inf-l1.tsv", "1\t1\tinf\n");
  EXPECT_EQ(try_load_network_tsv(prefix("inf"), 4, 1, 0.0f, 1.0f).code(),
            platform::ErrorCode::kBadModelFile);
}

TEST_F(SdgcIoCorpusTest, NetworkOutOfRangeIndexRejected) {
  write_file("oor-l1.tsv", "5\t1\t1.0\n");  // row 5 > neurons=4
  EXPECT_EQ(try_load_network_tsv(prefix("oor"), 4, 1, 0.0f, 1.0f).code(),
            platform::ErrorCode::kBadModelFile);
}

TEST_F(SdgcIoCorpusTest, MatrixMalformedVariantsRejected) {
  write_file("mjunk.tsv", "1\t1\t0.5\nxyz\n");
  EXPECT_EQ(try_load_matrix_tsv(prefix("mjunk.tsv"), 4, 4).code(),
            platform::ErrorCode::kBadInput);
  write_file("mnan.tsv", "1\t1\tnan\n");
  EXPECT_EQ(try_load_matrix_tsv(prefix("mnan.tsv"), 4, 4).code(),
            platform::ErrorCode::kBadInput);
  write_file("mzero.tsv", "0\t1\t1.0\n");  // 1-indexed: 0 out of range
  EXPECT_EQ(try_load_matrix_tsv(prefix("mzero.tsv"), 4, 4).code(),
            platform::ErrorCode::kBadInput);
}

TEST_F(SdgcIoCorpusTest, CategoriesMalformedVariantsRejected) {
  write_file("cjunk.tsv", "1\ntwo\n");
  EXPECT_EQ(try_load_categories_tsv(prefix("cjunk.tsv"), 4).code(),
            platform::ErrorCode::kBadInput);
  write_file("czero.tsv", "0\n");
  EXPECT_EQ(try_load_categories_tsv(prefix("czero.tsv"), 4).code(),
            platform::ErrorCode::kBadInput);
}

TEST_F(SdgcIoCorpusTest, CleanFilesWithTrailingNewlineStillLoad) {
  write_file("ok-l1.tsv", "1\t2\t0.5\n3\t4\t-1.25\n\n");
  const auto result = try_load_network_tsv(prefix("ok"), 4, 1, 0.0f, 1.0f);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_layers(), 1u);
}

TEST_F(SdgcIoCorpusTest, LegacyWrapperThrowsTypedException) {
  write_file("wjunk.tsv", "1\t1\t0.5\njunk\n");
  try {
    load_matrix_tsv(prefix("wjunk.tsv"), 4, 4);
    FAIL() << "expected ErrorException";
  } catch (const platform::ErrorException& e) {
    EXPECT_EQ(e.code(), platform::ErrorCode::kBadInput);
  }
}

}  // namespace
}  // namespace snicit::radixnet
