// Golden-output regression suite: every engine's full-precision output
// on seeded synthetic workloads is digested (FNV-1a over the raw float
// bit patterns plus the output shape) and compared against checked-in
// golden digests. Any change to kernel order-of-operations, conversion
// arithmetic, or engine plumbing that perturbs even one output bit
// fails here — before it can masquerade as a performance win.
//
// The spMM policy is pinned to the scalar gather kernel so digests are a
// pure function of (workload seed, engine algorithm), not of the host's
// core count or SIMD width.
//
// Refreshing after an *intentional* numerical change:
//
//   ./tests/test_golden --update-golden        # or SNICIT_UPDATE_GOLDEN=1
//
// rewrites tests/golden/engine_digests.txt with the digests of the
// current build (merging over any entries whose tests were filtered
// out); commit the diff alongside the change that explains it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/bf2019.hpp"
#include "baselines/serial.hpp"
#include "baselines/snig2020.hpp"
#include "baselines/xy2021.hpp"
#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "radixnet/radixnet.hpp"
#include "snicit/engine.hpp"
#include "snicit/warm_cache.hpp"

namespace snicit {
namespace {

bool g_update_golden = false;

const char* golden_path() {
  return SNICIT_GOLDEN_DIR "/engine_digests.txt";
}

/// FNV-1a over raw bytes; seeded with the basis offset.
std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t hash = 1469598103934665603ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t digest_output(const dnn::DenseMatrix& output) {
  const std::uint64_t rows = output.rows();
  const std::uint64_t cols = output.cols();
  std::uint64_t hash = fnv1a(&rows, sizeof(rows));
  hash = fnv1a(&cols, sizeof(cols), hash);
  // Column-major float bits; bit-identity is the contract, so the digest
  // covers the exact IEEE representation including signed zeros.
  for (std::uint64_t j = 0; j < cols; ++j) {
    hash = fnv1a(output.col(j), rows * sizeof(float), hash);
  }
  return hash;
}

struct GoldenConfig {
  std::string name;
  sparse::Index neurons;
  int layers;
  std::size_t batch;
  std::uint64_t seed;
};

const std::vector<GoldenConfig>& configs() {
  static const std::vector<GoldenConfig> kConfigs = {
      {"sdgc-256x24-b64", 256, 24, 64, 7},
      {"sdgc-256x48-b32", 256, 48, 32, 11},
      {"sdgc-512x24-b48", 512, 24, 48, 13},
  };
  return kConfigs;
}

/// Digests computed by the tests of this process run; flushed to the
/// golden file by main() when --update-golden is set.
std::map<std::string, std::uint64_t>& computed() {
  static std::map<std::string, std::uint64_t> map;
  return map;
}

std::map<std::string, std::uint64_t> load_golden() {
  std::map<std::string, std::uint64_t> golden;
  std::ifstream in(golden_path());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key, hex;
    if (fields >> key >> hex) {
      golden[key] = std::strtoull(hex.c_str(), nullptr, 16);
    }
  }
  return golden;
}

bool store_golden(const std::map<std::string, std::uint64_t>& golden) {
  std::ofstream out(golden_path());
  out << "# Golden engine-output digests (FNV-1a over shape + float "
         "bits).\n"
      << "# Regenerate with: test_golden --update-golden (see file "
         "header comment).\n";
  char hex[32];
  for (const auto& [key, value] : golden) {
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(value));
    out << key << " " << hex << "\n";
  }
  return out.good();
}

std::unique_ptr<dnn::InferenceEngine> make_engine(
    const std::string& name, int layers,
    sparse::SpmmEpilogue epilogue = sparse::SpmmEpilogue::kFused) {
  // Pinned scalar kernel: digests must not depend on the host machine.
  sparse::SpmmPolicy policy;
  policy.variant = sparse::SpmmVariant::kGatherScalar;
  policy.epilogue = epilogue;
  if (name == "reference") return std::make_unique<dnn::ReferenceEngine>();
  if (name == "bf2019") {
    return std::make_unique<baselines::Bf2019Engine>(0, policy);
  }
  if (name == "snig2020") {
    return std::make_unique<baselines::Snig2020Engine>(0, 4, policy);
  }
  if (name == "xy2021") {
    baselines::Xy2021Options opt;
    opt.policy = policy;
    return std::make_unique<baselines::Xy2021Engine>(opt);
  }
  core::SnicitParams params;
  params.threshold_layer = layers / 2;
  params.sample_size = 16;
  params.downsample_dim = 16;
  params.spmm = policy;
  if (name == "snicit") {
    return std::make_unique<core::SnicitEngine>(params);
  }
  if (name == "snicit-warm") {
    return std::make_unique<core::WarmSnicitEngine>(params);
  }
  return nullptr;
}

/// Runs `engine_name` `runs` times on each config and digests the output
/// of the LAST run. With runs = 1 this is the classic cold digest; with
/// runs = 2 it pins the warm path of cache-carrying engines
/// (WarmSnicitEngine's first run establishes the centroid cache, the
/// second serves from it — the serving steady state), so a regression
/// that only corrupts cache reuse cannot hide behind a clean cold run.
void check_engine(
    const std::string& engine_name, int runs = 1,
    sparse::SpmmEpilogue epilogue = sparse::SpmmEpilogue::kFused) {
  const auto golden = load_golden();
  for (const auto& config : configs()) {
    radixnet::RadixNetOptions net_opt;
    net_opt.neurons = config.neurons;
    net_opt.layers = config.layers;
    net_opt.fanin = 16;
    net_opt.seed = config.seed;
    const auto net = radixnet::make_radixnet(net_opt);
    net.ensure_csc();
    data::SdgcInputOptions in_opt;
    in_opt.neurons = static_cast<std::size_t>(config.neurons);
    in_opt.batch = config.batch;
    in_opt.seed = config.seed + 1;
    const auto input = data::make_sdgc_input(in_opt).features;

    auto engine = make_engine(engine_name, config.layers, epilogue);
    ASSERT_NE(engine, nullptr) << engine_name;
    auto result = engine->run(net, input);
    for (int r = 1; r < runs; ++r) result = engine->run(net, input);
    const std::uint64_t digest = digest_output(result.output);

    const std::string key =
        runs > 1 ? config.name + "/" + engine_name + "@run" +
                       std::to_string(runs)
                 : config.name + "/" + engine_name;
    computed()[key] = digest;
    if (g_update_golden) continue;  // comparison deferred to the refresh
    const auto expected = golden.find(key);
    ASSERT_NE(expected, golden.end())
        << "no golden digest for " << key
        << " — run test_golden --update-golden and commit "
        << golden_path();
    char got[32];
    std::snprintf(got, sizeof(got), "%016llx",
                  static_cast<unsigned long long>(digest));
    char want[32];
    std::snprintf(want, sizeof(want), "%016llx",
                  static_cast<unsigned long long>(expected->second));
    EXPECT_EQ(digest, expected->second)
        << key << ": output digest " << got << " != golden " << want
        << " — engine outputs changed bit-for-bit; if intentional, "
        << "refresh with test_golden --update-golden";
  }
}

TEST(GoldenOutputs, Reference) { check_engine("reference"); }
TEST(GoldenOutputs, Bf2019) { check_engine("bf2019"); }
TEST(GoldenOutputs, Snig2020) { check_engine("snig2020"); }
TEST(GoldenOutputs, Xy2021) { check_engine("xy2021"); }
TEST(GoldenOutputs, Snicit) { check_engine("snicit"); }
// Warm engine, cold first run: digest must match the run-1 contract.
TEST(GoldenOutputs, SnicitWarmFirstRun) { check_engine("snicit-warm"); }
// Warm engine, second run served from the centroid cache.
TEST(GoldenOutputs, SnicitWarmSecondRun) {
  check_engine("snicit-warm", /*runs=*/2);
}

// The fused-epilogue contract at system scale: forcing the split A/B arm
// (spMM then a separate apply_bias_activation pass) must reproduce the
// fused-default digests bit-for-bit — the SAME golden keys, no separate
// entries. A divergence here means a fused kernel changed an
// accumulation order somewhere in an engine's layer loop.
TEST(GoldenOutputs, Bf2019SplitEpilogueSameDigests) {
  check_engine("bf2019", 1, sparse::SpmmEpilogue::kSplit);
}
TEST(GoldenOutputs, Snig2020SplitEpilogueSameDigests) {
  check_engine("snig2020", 1, sparse::SpmmEpilogue::kSplit);
}
TEST(GoldenOutputs, Xy2021SplitEpilogueSameDigests) {
  check_engine("xy2021", 1, sparse::SpmmEpilogue::kSplit);
}
TEST(GoldenOutputs, SnicitSplitEpilogueSameDigests) {
  check_engine("snicit", 1, sparse::SpmmEpilogue::kSplit);
}
TEST(GoldenOutputs, SnicitWarmSplitEpilogueSameDigests) {
  check_engine("snicit-warm", 2, sparse::SpmmEpilogue::kSplit);
}

}  // namespace
}  // namespace snicit

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      snicit::g_update_golden = true;
    }
  }
  const char* env = std::getenv("SNICIT_UPDATE_GOLDEN");
  if (env != nullptr && std::string(env) == "1") {
    snicit::g_update_golden = true;
  }
  const int rc = RUN_ALL_TESTS();
  if (snicit::g_update_golden && rc == 0) {
    // Merge over existing entries so a filtered refresh (--gtest_filter)
    // does not drop digests it never recomputed.
    auto merged = snicit::load_golden();
    for (const auto& [key, value] : snicit::computed()) {
      merged[key] = value;
    }
    if (!snicit::store_golden(merged)) {
      std::fprintf(stderr, "failed to write %s\n", snicit::golden_path());
      return 1;
    }
    std::printf("wrote %zu golden digest(s) to %s\n", merged.size(),
                snicit::golden_path());
  }
  return rc;
}
