// Unit suite for the batch-packing layer: SimHash signature properties
// (determinism, noise tolerance, class separation on the clustered SDGC
// workload), the permutation contract every packer must honour, the
// greedy leader clustering behaviour of the similarity packer, and the
// factory's typed rejection of unknown strategy names.
#include "serve/packer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "data/synthetic.hpp"
#include "platform/error.hpp"
#include "platform/rng.hpp"

namespace snicit::serve {
namespace {

std::vector<float> column_of(const sparse::DenseMatrix& m, std::size_t j) {
  return {m.col(j), m.col(j) + m.rows()};
}

bool is_permutation_of_n(const std::vector<std::size_t>& order,
                         std::size_t n) {
  if (order.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (const std::size_t p : order) {
    if (p >= n || seen[p]) return false;
    seen[p] = true;
  }
  return true;
}

TEST(Signature, DeterministicAndSeedSensitive) {
  std::vector<float> x(128, 0.0f);
  x[3] = 1.0f;
  x[40] = 2.5f;
  x[90] = 0.25f;
  EXPECT_EQ(input_signature(x), input_signature(x));
  EXPECT_NE(input_signature(x, 1), input_signature(x, 2));
  // Zero columns hash to the empty sketch regardless of length.
  const std::vector<float> zeros(64, 0.0f);
  EXPECT_EQ(input_signature(zeros), input_signature(std::vector<float>(8)));
}

TEST(Signature, SimilarityBoundsAndIdentity) {
  const Signature a = 0xdeadbeefcafef00dULL;
  EXPECT_DOUBLE_EQ(signature_similarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(signature_similarity(a, ~a), 0.0);
  const double sim = signature_similarity(a, a ^ 0xffULL);  // 8 bits flip
  EXPECT_DOUBLE_EQ(sim, 56.0 / 64.0);
}

TEST(Signature, SameClassAgreesMoreThanCrossClass) {
  // SDGC-style inputs: class prototypes + flip noise. Same-class columns
  // must agree on clearly more bits than cross-class ones, with a usable
  // gap around the packer's default 0.75 threshold.
  data::SdgcInputOptions opt;
  opt.neurons = 512;
  opt.batch = 60;
  opt.classes = 6;
  opt.seed = 21;
  const auto data = data::make_sdgc_input(opt);
  std::vector<Signature> sig(opt.batch);
  for (std::size_t j = 0; j < opt.batch; ++j) {
    sig[j] = input_signature(column_of(data.features, j));
  }
  double same_sum = 0.0, cross_sum = 0.0;
  std::size_t same_n = 0, cross_n = 0;
  for (std::size_t a = 0; a < opt.batch; ++a) {
    for (std::size_t b = a + 1; b < opt.batch; ++b) {
      const double s = signature_similarity(sig[a], sig[b]);
      if (data.labels[a] == data.labels[b]) {
        same_sum += s;
        same_n += 1;
      } else {
        cross_sum += s;
        cross_n += 1;
      }
    }
  }
  ASSERT_GT(same_n, 0u);
  ASSERT_GT(cross_n, 0u);
  const double same_mean = same_sum / static_cast<double>(same_n);
  const double cross_mean = cross_sum / static_cast<double>(cross_n);
  EXPECT_GT(same_mean, cross_mean + 0.1)
      << "same " << same_mean << " vs cross " << cross_mean;
}

TEST(Signature, MeanPairwiseSimilarityEdgeCases) {
  EXPECT_DOUBLE_EQ(mean_pairwise_similarity({}), 1.0);
  const std::vector<Signature> one = {42};
  EXPECT_DOUBLE_EQ(mean_pairwise_similarity(one), 1.0);
  const std::vector<Signature> pair = {0x0ULL, ~0x0ULL};
  EXPECT_DOUBLE_EQ(mean_pairwise_similarity(pair), 0.0);
}

TEST(Packers, FifoIsIdentity) {
  FifoPacker packer;
  std::vector<Signature> sigs(7, 0);
  const auto order = packer.pack(sigs, 3);
  std::vector<std::size_t> identity(7);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_EQ(order, identity);
}

TEST(Packers, AlwaysAPermutationUnderFuzz) {
  platform::Rng rng(99);
  for (const char* name : {"fifo", "similarity"}) {
    auto packer = make_packer(name);
    for (int round = 0; round < 20; ++round) {
      const std::size_t n = 1 + rng.next_below(70);
      std::vector<Signature> sigs(n);
      for (auto& s : sigs) s = rng.next_u64();
      const std::size_t max_batch = 1 + rng.next_below(17);
      EXPECT_TRUE(is_permutation_of_n(packer->pack(sigs, max_batch), n))
          << name << " n=" << n << " max_batch=" << max_batch;
    }
  }
}

TEST(Packers, SimilarityGroupsIdenticalSignatures) {
  // Interleaved members of two signature families A and B: the packer
  // must de-interleave them so each family forms one contiguous run,
  // clusters emitted in first-arrival order (A leads).
  const Signature a = 0x1234123412341234ULL;
  const Signature b = ~a;
  const std::vector<Signature> sigs = {a, b, a, b, a, b};
  SimilarityPacker packer(0.75);
  const auto order = packer.pack(sigs, 3);
  ASSERT_TRUE(is_permutation_of_n(order, sigs.size()));
  const std::vector<std::size_t> expected = {0, 2, 4, 1, 3, 5};
  EXPECT_EQ(order, expected);
}

TEST(Packers, SimilarityRaisesIntraBatchSimilarityOnClusteredInput) {
  data::SdgcInputOptions opt;
  opt.neurons = 512;
  opt.batch = 64;
  opt.classes = 8;
  opt.seed = 33;
  const auto data = data::make_sdgc_input(opt);
  std::vector<Signature> sigs(opt.batch);
  for (std::size_t j = 0; j < opt.batch; ++j) {
    sigs[j] = input_signature(column_of(data.features, j));
  }
  const std::size_t max_batch = 16;
  const auto batch_mean = [&](const std::vector<std::size_t>& order) {
    double sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin < order.size(); begin += max_batch) {
      const std::size_t end = std::min(order.size(), begin + max_batch);
      std::vector<Signature> batch;
      for (std::size_t p = begin; p < end; ++p) {
        batch.push_back(sigs[order[p]]);
      }
      sum += mean_pairwise_similarity(batch);
      batches += 1;
    }
    return sum / static_cast<double>(batches);
  };
  FifoPacker fifo;
  SimilarityPacker similarity;
  const double fifo_mean = batch_mean(fifo.pack(sigs, max_batch));
  const double packed_mean = batch_mean(similarity.pack(sigs, max_batch));
  EXPECT_GT(packed_mean, fifo_mean)
      << "similarity packing failed to beat arrival order";
}

TEST(Packers, FactoryNamesAndTypedRejection) {
  const auto& names = known_packers();
  ASSERT_EQ(names.size(), 2u);
  for (const auto& name : names) {
    EXPECT_EQ(make_packer(name)->name(), name);
  }
  try {
    make_packer("clairvoyant");
    FAIL() << "unknown packer must throw";
  } catch (const platform::ErrorException& e) {
    EXPECT_EQ(e.code(), platform::ErrorCode::kBadInput);
  }
}

}  // namespace
}  // namespace snicit::serve
