// Cross-model determinism suite for the multi-model router: however the
// tenants' request streams interleave, whatever the shared worker count
// or packer, every tenant's results are exactly what single-model serving
// would have produced — per-request bit-identity to a serial single-model
// oracle for column-independent engines, per-formed-batch serial replay
// for SNICIT (whose outputs are batch-composition dependent). Tenants are
// isolated: one tenant's faulting engine, expiring deadlines, or burst
// cannot lose, corrupt, or fail another tenant's requests. Hot swap
// rebinds a lane between rounds with the generation counter as the
// witness; remove drains the lane cleanly.
#include "serve/router.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "baselines/serial.hpp"
#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "platform/error.hpp"
#include "platform/fault_injection.hpp"
#include "platform/rng.hpp"
#include "radixnet/radixnet.hpp"
#include "serve/load_replay.hpp"
#include "serve/load_script.hpp"
#include "snicit/engine.hpp"
#include "snicit/stream.hpp"

namespace snicit::serve {
namespace {

using platform::ErrorCode;

constexpr sparse::Index kNeurons = 96;
constexpr int kLayers = 8;

std::string tenant_id(std::size_t m) {
  return "tenant" + std::to_string(m);
}

ModelSpec tenant_spec(std::size_t m, const std::string& engine) {
  ModelSpec spec;
  spec.id = tenant_id(m);
  spec.engine = engine;
  spec.neurons = kNeurons;
  spec.layers = kLayers;
  spec.fanin = 8;
  spec.seed = 3 + 11 * m;   // genuinely different weights per tenant
  spec.threshold = 4;       // mid-net conversion for the SNICIT tenants
  return spec;
}

dnn::DenseMatrix tenant_input(std::size_t m, std::size_t requests) {
  data::SdgcInputOptions opt;
  opt.neurons = static_cast<std::size_t>(kNeurons);
  opt.batch = requests;
  opt.seed = 101 + 7 * m;
  return data::make_sdgc_input(opt).features;
}

std::vector<float> column_of(const dnn::DenseMatrix& m, std::size_t j) {
  return {m.col(j), m.col(j) + m.rows()};
}

bool bit_identical(const std::vector<float>& a, const float* b,
                   std::size_t n) {
  return a.size() == n && std::memcmp(a.data(), b, n * sizeof(float)) == 0;
}

/// Merged submission timeline: (tenant, column) pairs. Variant 0 strictly
/// round-robins the tenants, 1 submits tenant blocks back to back (the
/// burst shape), >= 2 are seeded shuffles of the merged stream.
std::vector<std::pair<std::size_t, std::size_t>> interleave(
    std::size_t tenants, std::size_t requests, int variant) {
  std::vector<std::pair<std::size_t, std::size_t>> merged;
  merged.reserve(tenants * requests);
  if (variant == 1) {
    for (std::size_t m = 0; m < tenants; ++m) {
      for (std::size_t j = 0; j < requests; ++j) merged.push_back({m, j});
    }
  } else {
    for (std::size_t j = 0; j < requests; ++j) {
      for (std::size_t m = 0; m < tenants; ++m) merged.push_back({m, j});
    }
  }
  if (variant >= 2) {
    platform::Rng rng(0x70e7 + static_cast<std::uint64_t>(variant));
    for (std::size_t i = merged.size(); i > 1; --i) {
      std::swap(merged[i - 1], merged[rng.next_below(i)]);
    }
  }
  return merged;
}

/// Submits the merged timeline and returns, per tenant, the column each
/// of its requests carried (index = the lane-local request id).
std::vector<std::vector<std::size_t>> submit_interleaved(
    Router& router, const std::vector<dnn::DenseMatrix>& inputs,
    const std::vector<std::pair<std::size_t, std::size_t>>& merged,
    double deadline_ms = 0.0) {
  std::vector<std::vector<std::size_t>> columns(inputs.size());
  for (const auto& [m, j] : merged) {
    const auto id =
        router.submit(tenant_id(m), column_of(inputs[m], j), deadline_ms);
    EXPECT_TRUE(id.ok()) << id.error().message;
    if (id.ok()) {
      EXPECT_EQ(id.value(), columns[m].size());  // lane-local dense ids
      columns[m].push_back(j);
    }
  }
  return columns;
}

// --- Column-independent engines: per-request bit-identity to the
// serial single-model oracle across the interleave x workers x packer
// grid ----------------------------------------------------------------

class RouterDeterminism
    : public ::testing::TestWithParam<std::tuple<int, int, const char*>> {
};

TEST_P(RouterDeterminism, EveryTenantMatchesItsSingleModelOracle) {
  const int interleave_variant = std::get<0>(GetParam());
  const auto workers = static_cast<std::size_t>(std::get<1>(GetParam()));
  const std::string packer = std::get<2>(GetParam());
  constexpr std::size_t kTenants = 3;
  constexpr std::size_t kRequests = 21;  // partial tail batches

  ModelRegistry registry;
  std::vector<dnn::DenseMatrix> inputs;
  std::vector<dnn::DenseMatrix> oracles;
  for (std::size_t m = 0; m < kTenants; ++m) {
    ASSERT_TRUE(registry.add(tenant_spec(m, "reference")).ok());
    inputs.push_back(tenant_input(m, kRequests));
    // Single-model oracle: serial stream over this tenant's own columns
    // on this tenant's own net — no router, no other tenants.
    const auto model = registry.find(tenant_id(m));
    dnn::ReferenceEngine serial;
    oracles.push_back(
        core::stream_inference(serial, *model->net, inputs[m], {})
            .outputs);
  }

  RouterOptions opt;
  opt.serve.max_batch = 8;
  opt.serve.packer = packer;
  opt.serve.workers = workers;
  Router router(registry, opt);
  const auto columns = submit_interleaved(
      router, inputs, interleave(kTenants, kRequests, interleave_variant));
  const auto report = router.finish();

  ASSERT_EQ(report.tenants.size(), kTenants);
  for (std::size_t m = 0; m < kTenants; ++m) {
    const ServeReport* tenant = report.find(tenant_id(m));
    ASSERT_NE(tenant, nullptr);
    ASSERT_EQ(tenant->requests, kRequests);
    ASSERT_EQ(tenant->results.size(), kRequests);
    EXPECT_TRUE(tenant->complete());
    for (std::size_t i = 0; i < kRequests; ++i) {
      const auto& result = tenant->results[i];
      ASSERT_EQ(result.id, i);
      ASSERT_TRUE(result.ok()) << result.message;
      EXPECT_TRUE(bit_identical(result.output,
                                oracles[m].col(columns[m][i]),
                                oracles[m].rows()))
          << tenant_id(m) << " request " << i << " (column "
          << columns[m][i] << ") diverged from single-model serving";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, RouterDeterminism,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),  // interleavings
                       ::testing::Values(1, 3),        // shared workers
                       ::testing::Values("fifo", "similarity")));

// --- SNICIT tenants: per-formed-batch serial replay -------------------

TEST(RouterSnicit, FormedBatchesReplayBitIdenticallyPerTenant) {
  constexpr std::size_t kTenants = 2;
  constexpr std::size_t kRequests = 24;

  ModelRegistry registry;
  std::vector<dnn::DenseMatrix> inputs;
  for (std::size_t m = 0; m < kTenants; ++m) {
    ASSERT_TRUE(registry.add(tenant_spec(m, "snicit")).ok());
    inputs.push_back(tenant_input(m, kRequests));
  }

  RouterOptions opt;
  opt.serve.max_batch = 8;
  opt.serve.packer = "similarity";
  opt.serve.workers = 3;
  Router router(registry, opt);
  const auto columns = submit_interleaved(
      router, inputs, interleave(kTenants, kRequests, 2));
  const auto report = router.finish();

  core::SnicitParams params;
  params.threshold_layer = 4;  // matches tenant_spec().threshold
  for (std::size_t m = 0; m < kTenants; ++m) {
    const ServeReport* tenant = report.find(tenant_id(m));
    ASSERT_NE(tenant, nullptr);
    ASSERT_TRUE(tenant->complete());
    ASSERT_EQ(tenant->results.size(), kRequests);
    const auto model = registry.find(tenant_id(m));
    for (const auto& record : tenant->batch_log) {
      dnn::DenseMatrix batch(inputs[m].rows(), record.request_ids.size());
      for (std::size_t p = 0; p < record.request_ids.size(); ++p) {
        const std::size_t column = columns[m][record.request_ids[p]];
        std::copy_n(inputs[m].col(column), inputs[m].rows(),
                    batch.col(p));
      }
      // Serial replay of exactly this engine batch on this tenant's net:
      // the router may not change what a formed batch computes.
      core::SnicitEngine replay_engine(params);
      core::StreamOptions sopt;
      sopt.batch_size = record.request_ids.size();
      const auto replay =
          core::stream_inference(replay_engine, *model->net, batch, sopt);
      for (std::size_t p = 0; p < record.request_ids.size(); ++p) {
        const auto& result = tenant->results[record.request_ids[p]];
        ASSERT_TRUE(result.ok());
        EXPECT_TRUE(bit_identical(result.output, replay.outputs.col(p),
                                  replay.outputs.rows()))
            << tenant_id(m) << " request " << result.id << " in batch "
            << record.batch;
      }
    }
  }
}

// --- Isolation drills -------------------------------------------------

/// Deterministically faulting engine: every run throws a typed worker
/// fault. clone() works, so the registry accepts it — the failure
/// happens in serving, where isolation must contain it.
class ThrowingEngine final : public dnn::InferenceEngine {
 public:
  std::string name() const override { return "throwing"; }
  dnn::RunResult run(const dnn::SparseDnn&,
                     const dnn::DenseMatrix&) override {
    throw platform::ErrorException(ErrorCode::kWorkerFault,
                                   "injected tenant fault");
  }
  std::unique_ptr<dnn::InferenceEngine> clone() const override {
    return std::make_unique<ThrowingEngine>();
  }
};

TEST(RouterIsolation, FaultingTenantCannotCorruptItsNeighbour) {
  constexpr std::size_t kRequests = 16;
  ModelRegistry registry;
  // tenant0: always-throwing engine. tenant1: healthy reference.
  {
    radixnet::RadixNetOptions opt;
    opt.neurons = kNeurons;
    opt.layers = kLayers;
    opt.fanin = 8;
    opt.seed = 3;
    auto net = std::make_shared<const dnn::SparseDnn>(
        radixnet::make_radixnet(opt));
    net->ensure_csc();
    ASSERT_TRUE(registry
                    .add_model(tenant_id(0), net,
                               std::make_shared<ThrowingEngine>())
                    .ok());
  }
  ASSERT_TRUE(registry.add(tenant_spec(1, "reference")).ok());
  std::vector<dnn::DenseMatrix> inputs = {tenant_input(0, kRequests),
                                          tenant_input(1, kRequests)};
  const auto model1 = registry.find(tenant_id(1));
  dnn::ReferenceEngine serial;
  const auto oracle =
      core::stream_inference(serial, *model1->net, inputs[1], {}).outputs;

  RouterOptions opt;
  opt.serve.max_batch = 8;
  opt.serve.workers = 2;
  opt.serve.max_attempts = 2;
  opt.serve.retry_backoff_ms = 0.0;
  Router router(registry, opt);
  const auto columns =
      submit_interleaved(router, inputs, interleave(2, kRequests, 0));
  const auto report = router.finish();

  // The faulting tenant fails every request — typed, not crashed.
  const ServeReport* faulty = report.find(tenant_id(0));
  ASSERT_NE(faulty, nullptr);
  ASSERT_EQ(faulty->results.size(), kRequests);
  EXPECT_EQ(faulty->failed_requests, kRequests);
  for (const auto& result : faulty->results) {
    EXPECT_EQ(result.code, ErrorCode::kWorkerFault);
    EXPECT_TRUE(result.output.empty());
  }

  // The neighbour must not lose, fail, or diverge on a single request.
  const ServeReport* healthy = report.find(tenant_id(1));
  ASSERT_NE(healthy, nullptr);
  ASSERT_EQ(healthy->results.size(), kRequests);
  EXPECT_TRUE(healthy->complete());
  for (std::size_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(healthy->results[i].ok());
    EXPECT_TRUE(bit_identical(healthy->results[i].output,
                              oracle.col(columns[1][i]), oracle.rows()));
  }
}

TEST(RouterIsolation, GlobalWorkerThrowDrillStaysBitIdentical) {
  auto& faults = platform::fault::FaultRegistry::global();
  ASSERT_TRUE(faults.configure("worker_throw:0.3", 7).ok());

  constexpr std::size_t kTenants = 2;
  constexpr std::size_t kRequests = 24;
  ModelRegistry registry;
  std::vector<dnn::DenseMatrix> inputs;
  std::vector<dnn::DenseMatrix> oracles;
  for (std::size_t m = 0; m < kTenants; ++m) {
    ASSERT_TRUE(registry.add(tenant_spec(m, "reference")).ok());
    inputs.push_back(tenant_input(m, kRequests));
  }

  RouterOptions opt;
  opt.serve.max_batch = 8;
  opt.serve.workers = 3;
  opt.serve.max_attempts = 6;
  opt.serve.retry_backoff_ms = 0.0;
  Router router(registry, opt);
  const auto columns = submit_interleaved(
      router, inputs, interleave(kTenants, kRequests, 3));
  const auto report = router.finish();
  faults.clear();

  // Oracle computed after the drill is disarmed: the drill must not be
  // able to touch results, only cost retries.
  std::size_t retries = 0;
  for (std::size_t m = 0; m < kTenants; ++m) {
    const auto model = registry.find(tenant_id(m));
    dnn::ReferenceEngine serial;
    const auto oracle =
        core::stream_inference(serial, *model->net, inputs[m], {})
            .outputs;
    const ServeReport* tenant = report.find(tenant_id(m));
    ASSERT_NE(tenant, nullptr);
    EXPECT_TRUE(tenant->complete())
        << tenant_id(m) << ": " << tenant->failed_requests << " failed";
    ASSERT_EQ(tenant->results.size(), kRequests);
    retries += tenant->retries;
    for (std::size_t i = 0; i < kRequests; ++i) {
      ASSERT_TRUE(tenant->results[i].ok());
      EXPECT_TRUE(bit_identical(tenant->results[i].output,
                                oracle.col(columns[m][i]),
                                oracle.rows()));
    }
  }
  EXPECT_GT(retries, 0u) << "drill armed but nothing retried";
}

TEST(RouterIsolation, OneTenantsDeadlinesDoNotTouchTheOther) {
  constexpr std::size_t kRequests = 12;
  ModelRegistry registry;
  ASSERT_TRUE(registry.add(tenant_spec(0, "reference")).ok());
  ASSERT_TRUE(registry.add(tenant_spec(1, "reference")).ok());
  std::vector<dnn::DenseMatrix> inputs = {tenant_input(0, kRequests),
                                          tenant_input(1, kRequests)};
  const auto model1 = registry.find(tenant_id(1));
  dnn::ReferenceEngine serial;
  const auto oracle =
      core::stream_inference(serial, *model1->net, inputs[1], {}).outputs;

  RouterOptions opt;
  opt.serve.max_batch = 8;
  Router router(registry, opt);
  std::vector<std::size_t> columns1;
  for (std::size_t j = 0; j < kRequests; ++j) {
    // tenant0's budget (100ns) is always expired by service time;
    // tenant1 has no deadline at all.
    ASSERT_TRUE(router
                    .submit(tenant_id(0), column_of(inputs[0], j),
                            /*deadline_ms=*/1e-4)
                    .ok());
    ASSERT_TRUE(
        router.submit(tenant_id(1), column_of(inputs[1], j)).ok());
    columns1.push_back(j);
  }
  const auto report = router.finish();

  const ServeReport* expired = report.find(tenant_id(0));
  ASSERT_NE(expired, nullptr);
  ASSERT_EQ(expired->results.size(), kRequests);
  EXPECT_EQ(expired->timed_out_requests, kRequests);
  for (const auto& result : expired->results) {
    EXPECT_EQ(result.code, ErrorCode::kTimeout);
  }

  const ServeReport* healthy = report.find(tenant_id(1));
  ASSERT_NE(healthy, nullptr);
  EXPECT_TRUE(healthy->complete());
  ASSERT_EQ(healthy->results.size(), kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(healthy->results[i].ok());
    EXPECT_TRUE(bit_identical(healthy->results[i].output,
                              oracle.col(columns1[i]), oracle.rows()));
  }
}

// --- Overload isolation ------------------------------------------------

TEST(RouterOverload, QuotaZeroFloodCannotTouchTheVictimsBits) {
  constexpr std::size_t kRequests = 16;
  ModelRegistry registry;
  ASSERT_TRUE(registry.add(tenant_spec(0, "reference")).ok());  // bully
  ASSERT_TRUE(registry.add(tenant_spec(1, "reference")).ok());  // victim
  std::vector<dnn::DenseMatrix> inputs = {tenant_input(0, kRequests),
                                          tenant_input(1, kRequests)};
  const auto model1 = registry.find(tenant_id(1));
  dnn::ReferenceEngine serial;
  const auto oracle =
      core::stream_inference(serial, *model1->net, inputs[1], {}).outputs;

  RouterOptions opt;
  opt.serve.max_batch = 8;
  opt.serve.admission.enabled = true;
  opt.serve.admission.max_queue_depth = 256;
  opt.serve.admission.tenant_depth[tenant_id(0)] = 0;  // cut the bully off
  Router router(registry, opt);
  for (std::size_t j = 0; j < kRequests; ++j) {
    // The flood fast-fails typed at intake — it never reaches a queue,
    // so it cannot displace, delay, or re-batch the victim's requests.
    const auto flooded =
        router.submit(tenant_id(0), column_of(inputs[0], j));
    ASSERT_FALSE(flooded.ok());
    EXPECT_EQ(flooded.code(), ErrorCode::kRejectedOverload);
    EXPECT_NE(flooded.error().message.find("retry after"),
              std::string::npos);
    ASSERT_TRUE(
        router.submit(tenant_id(1), column_of(inputs[1], j)).ok());
  }
  const auto report = router.finish();

  const ServeReport* victim = report.find(tenant_id(1));
  ASSERT_NE(victim, nullptr);
  ASSERT_EQ(victim->results.size(), kRequests);
  EXPECT_TRUE(victim->complete());
  for (std::size_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(victim->results[i].ok());
    EXPECT_TRUE(bit_identical(victim->results[i].output, oracle.col(i),
                              oracle.rows()))
        << "victim request " << i << " diverged under the flood";
  }
}

TEST(RouterOverload, ReplayFloodLeavesVictimLatencyProfileUntouched) {
  // Virtual-clock drill: the same victim arrival stream replayed with and
  // without a quota-zero bully flood must produce *bitwise identical*
  // victim outcomes — acceptance, completions, every latency sample, and
  // therefore the p95. Tenant streams are seeded independently, so
  // erasing the bully's events is the exact no-flood oracle.
  radixnet::RadixNetOptions nopt;
  nopt.neurons = 64;
  nopt.layers = 4;
  nopt.seed = 31;
  auto net = radixnet::make_radixnet(nopt);
  net.ensure_csc();
  data::SdgcInputOptions iopt;
  iopt.neurons = 64;
  iopt.batch = 16;
  iopt.seed = 32;
  const auto samples = data::make_sdgc_input(iopt).features;

  LoadScriptSpec spec;
  spec.shape = "burst";  // bully dumps everything at t=0
  spec.tenants = {"bully", "victim"};
  spec.requests_per_tenant = 48;
  spec.mean_gap_ms = 0.6;
  spec.seed = 33;
  spec.samples = 16;
  const auto flood = make_load_script(spec);
  auto calm = flood;  // the oracle: same script minus the flood
  calm.events.erase(
      std::remove_if(calm.events.begin(), calm.events.end(),
                     [](const LoadEvent& e) { return e.tenant == "bully"; }),
      calm.events.end());

  baselines::SerialEngine engine_b;
  baselines::SerialEngine engine_v;
  const auto run = [&](const LoadScript& script) {
    ReplayOptions opt;
    opt.max_batch = 8;
    opt.run_engines = false;
    opt.admission.enabled = true;
    opt.admission.max_queue_depth = 256;
    opt.admission.tenant_depth["bully"] = 0;
    LoadReplayer replayer(opt);
    replayer.add_tenant("bully", engine_b, net, samples);
    replayer.add_tenant("victim", engine_v, net, samples);
    return replayer.run(script);
  };

  const auto stormy = run(flood);
  const auto quiet = run(calm);

  EXPECT_EQ(stormy.tenant("bully").rejected, spec.requests_per_tenant);
  const auto& hit = stormy.tenant("victim");
  const auto& oracle = quiet.tenant("victim");
  EXPECT_DOUBLE_EQ(hit.accept_rate(), 1.0);
  EXPECT_EQ(hit.completed, oracle.completed);
  ASSERT_EQ(hit.latency.count(), oracle.latency.count());
  EXPECT_EQ(hit.latency.p95(), oracle.latency.p95());  // bitwise, no slack
  for (std::size_t i = 0; i < stormy.requests.size(); ++i) {
    const auto& request = stormy.requests[i];
    if (request.tenant != "victim") continue;
    // Find the same victim arrival in the oracle run by (arrive, sample).
    const auto match = std::find_if(
        quiet.requests.begin(), quiet.requests.end(),
        [&](const auto& r) {
          return r.arrive_ms == request.arrive_ms &&
                 r.sample == request.sample;
        });
    ASSERT_NE(match, quiet.requests.end());
    EXPECT_EQ(request.outcome, match->outcome);
    EXPECT_EQ(request.latency_ms, match->latency_ms)
        << "victim request " << i << " timing perturbed by the flood";
  }
}

TEST(RouterOverload, QuotaCappedFloodStillAcceptsEveryVictimRequest) {
  radixnet::RadixNetOptions nopt;
  nopt.neurons = 64;
  nopt.layers = 4;
  nopt.seed = 31;
  auto net = radixnet::make_radixnet(nopt);
  net.ensure_csc();
  data::SdgcInputOptions iopt;
  iopt.neurons = 64;
  iopt.batch = 16;
  iopt.seed = 32;
  const auto samples = data::make_sdgc_input(iopt).features;

  LoadScriptSpec spec;
  spec.shape = "burst";
  spec.tenants = {"bully", "victim"};
  spec.requests_per_tenant = 48;
  spec.mean_gap_ms = 0.6;
  spec.seed = 33;
  spec.samples = 16;

  baselines::SerialEngine engine_b;
  baselines::SerialEngine engine_v;
  ReplayOptions opt;
  opt.max_batch = 8;
  opt.run_engines = false;
  opt.admission.enabled = true;
  opt.admission.max_queue_depth = 256;
  opt.admission.tenant_depth["bully"] = 4;  // capped, not cut off
  LoadReplayer replayer(opt);
  replayer.add_tenant("bully", engine_b, net, samples);
  replayer.add_tenant("victim", engine_v, net, samples);
  const auto report = replayer.run(make_load_script(spec));

  // The cap turns the burst into a drip: most of the flood is refused,
  // and what leaks through shares the server round-robin without ever
  // crowding a victim request out of the intake.
  const auto& bully = report.tenant("bully");
  EXPECT_GT(bully.rejected, 0u);
  EXPECT_GT(bully.completed, 0u);
  const auto& victim = report.tenant("victim");
  EXPECT_DOUBLE_EQ(victim.accept_rate(), 1.0);
  EXPECT_EQ(victim.completed, victim.submitted);
}

// --- Hot swap and remove lifecycle ------------------------------------

void wait_until(const std::function<bool()>& done) {
  for (int spin = 0; spin < 20000 && !done(); ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_TRUE(done()) << "condition not reached within 2s";
}

TEST(RouterLifecycle, HotSwapServesOldThenNewBitIdentically) {
  constexpr std::size_t kPhase = 10;
  ModelRegistry registry;
  auto spec = tenant_spec(0, "reference");
  spec.seed = 21;
  ASSERT_TRUE(registry.add(spec).ok());
  const auto input = tenant_input(0, 2 * kPhase);
  const auto old_model = registry.find(tenant_id(0));

  RouterOptions opt;
  opt.serve.max_batch = 4;
  Router router(registry, opt);
  for (std::size_t j = 0; j < kPhase; ++j) {
    ASSERT_TRUE(
        router.submit(tenant_id(0), column_of(input, j)).ok());
  }
  // Phase 1 fully served on the old engine before the swap lands.
  wait_until([&] { return router.completed(tenant_id(0)) == kPhase; });

  spec.seed = 22;  // same shape, different weights
  const auto swapped = registry.swap(spec);
  ASSERT_TRUE(swapped.ok());
  // The router observes the new generation between rounds.
  wait_until(
      [&] { return router.lane_generation(tenant_id(0)) == swapped.value(); });
  const auto new_model = registry.find(tenant_id(0));
  ASSERT_NE(new_model->net.get(), old_model->net.get());

  for (std::size_t j = kPhase; j < 2 * kPhase; ++j) {
    ASSERT_TRUE(
        router.submit(tenant_id(0), column_of(input, j)).ok());
  }
  const auto report = router.finish();

  const ServeReport* tenant = report.find(tenant_id(0));
  ASSERT_NE(tenant, nullptr);
  ASSERT_EQ(tenant->results.size(), 2 * kPhase);
  ASSERT_TRUE(tenant->complete());
  dnn::ReferenceEngine serial;
  const auto old_oracle =
      core::stream_inference(serial, *old_model->net, input, {}).outputs;
  const auto new_oracle =
      core::stream_inference(serial, *new_model->net, input, {}).outputs;
  for (std::size_t i = 0; i < 2 * kPhase; ++i) {
    const auto& oracle = i < kPhase ? old_oracle : new_oracle;
    ASSERT_TRUE(tenant->results[i].ok());
    EXPECT_TRUE(bit_identical(tenant->results[i].output, oracle.col(i),
                              oracle.rows()))
        << "request " << i << " served by the wrong engine generation";
  }
}

TEST(RouterLifecycle, RemoveWhileServingDrainsAcceptedRequests) {
  constexpr std::size_t kRequests = 8;
  ModelRegistry registry;
  ASSERT_TRUE(registry.add(tenant_spec(0, "reference")).ok());
  const auto input = tenant_input(0, kRequests);

  RouterOptions opt;
  opt.serve.max_batch = 4;
  Router router(registry, opt);
  for (std::size_t j = 0; j < kRequests; ++j) {
    ASSERT_TRUE(
        router.submit(tenant_id(0), column_of(input, j)).ok());
  }
  ASSERT_TRUE(registry.remove(tenant_id(0)).ok());
  // The lane notices the removal, drains what it accepted, and then
  // refuses new work — typed, not hung.
  wait_until([&] {
    const auto late = router.submit(tenant_id(0), column_of(input, 0));
    return !late.ok() && late.code() == ErrorCode::kBadInput;
  });
  const auto report = router.finish();
  const ServeReport* tenant = report.find(tenant_id(0));
  ASSERT_NE(tenant, nullptr);
  // Every request accepted before (or while) the removal landed got a
  // terminal result; none were dropped.
  EXPECT_GE(tenant->results.size(), kRequests);
  EXPECT_EQ(tenant->results.size(), tenant->requests);
  EXPECT_TRUE(tenant->complete());
}

TEST(RouterLifecycle, UnknownModelAndFinishedRouterAreTyped) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.add(tenant_spec(0, "reference")).ok());
  const auto input = tenant_input(0, 1);
  Router router(registry, {});
  const auto unknown =
      router.submit("nonexistent", column_of(input, 0));
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.code(), ErrorCode::kBadInput);

  ASSERT_TRUE(router.submit(tenant_id(0), column_of(input, 0)).ok());
  const auto report = router.finish();
  EXPECT_EQ(report.find(tenant_id(0))->requests, 1u);
  const auto late = router.submit(tenant_id(0), column_of(input, 0));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.code(), ErrorCode::kQueueClosed);
  // finish() is idempotent.
  EXPECT_TRUE(router.finish().tenants.empty());
}

}  // namespace
}  // namespace snicit::serve
