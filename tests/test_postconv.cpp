#include "snicit/postconv.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "radixnet/radixnet.hpp"
#include "snicit/recovery.hpp"
#include "sparse/spmm.hpp"

namespace snicit::core {
namespace {

using dnn::SparseDnn;

/// Builds a small SDGC-style net and a clustered input batch, runs the
/// exact reference to layer t, converts, then post-convergence-updates
/// through the remaining layers.
struct Fixture {
  SparseDnn net;
  DenseMatrix y_t;       // exact activations at layer t
  std::size_t t;

  static Fixture make(std::size_t t, std::uint64_t seed = 1) {
    radixnet::RadixNetOptions opt;
    opt.neurons = 96;
    opt.layers = 12;
    opt.fanin = 8;
    opt.bias = -0.2f;
    opt.seed = seed;
    auto net = radixnet::make_radixnet(opt);
    data::SdgcInputOptions in_opt;
    in_opt.neurons = 96;
    in_opt.batch = 24;
    in_opt.classes = 3;
    in_opt.seed = seed + 1;
    const auto input = data::make_sdgc_input(in_opt).features;
    auto y_t = dnn::reference_forward(net, input, 0, t);
    return Fixture{std::move(net), std::move(y_t), t};
  }
};

TEST(PostConv, SingleLayerMatchesReferenceAfterRecovery) {
  auto fx = Fixture::make(6);
  auto batch = convert_to_compressed(fx.y_t, {0, 1, 2}, 0.0f);
  DenseMatrix scratch(fx.y_t.rows(), fx.y_t.cols());
  post_convergence_layer(fx.net.weight(fx.t), fx.net.bias(fx.t),
                         fx.net.ymax(), 0.0f, batch, scratch);
  batch.refresh_ne_idx();
  const auto recovered = recover_results(batch);
  const auto expected =
      dnn::reference_forward(fx.net, fx.y_t, fx.t, fx.t + 1);
  EXPECT_LE(DenseMatrix::max_abs_diff(recovered, expected), 2e-4f);
}

TEST(PostConv, MultiLayerCloseToReference) {
  auto fx = Fixture::make(4);
  auto batch = convert_to_compressed(fx.y_t, {0, 1, 2, 3}, 0.0f);
  DenseMatrix scratch(fx.y_t.rows(), fx.y_t.cols());
  for (std::size_t l = fx.t; l < fx.net.num_layers(); ++l) {
    post_convergence_layer(fx.net.weight(l), fx.net.bias(l), fx.net.ymax(),
                           0.0f, batch, scratch);
    batch.refresh_ne_idx();
  }
  const auto recovered = recover_results(batch);
  const auto expected = dnn::reference_forward(fx.net, fx.y_t, fx.t,
                                               fx.net.num_layers());
  EXPECT_LE(DenseMatrix::max_abs_diff(recovered, expected), 2e-3f);
}

TEST(PostConv, IdenticalColumnsStayExactlyEqualToCentroidPath) {
  // When a non-centroid column duplicates its centroid, its residue is
  // exactly zero and must remain exactly zero through every layer — the
  // skip-empty-columns optimisation is exact, not approximate.
  auto fx = Fixture::make(5);
  // Duplicate centroid column 0 into columns 5 and 6.
  for (std::size_t r = 0; r < fx.y_t.rows(); ++r) {
    fx.y_t.at(r, 5) = fx.y_t.at(r, 0);
    fx.y_t.at(r, 6) = fx.y_t.at(r, 0);
  }
  auto batch = convert_to_compressed(fx.y_t, {0}, 0.0f);
  EXPECT_EQ(batch.ne_rec[5], 0);
  EXPECT_EQ(batch.ne_rec[6], 0);
  DenseMatrix scratch(fx.y_t.rows(), fx.y_t.cols());
  for (std::size_t l = fx.t; l < fx.net.num_layers(); ++l) {
    post_convergence_layer(fx.net.weight(l), fx.net.bias(l), fx.net.ymax(),
                           0.0f, batch, scratch);
    batch.refresh_ne_idx();
  }
  EXPECT_EQ(batch.yhat.column_nonzeros(5), 0u);
  EXPECT_EQ(batch.yhat.column_nonzeros(6), 0u);
  const auto recovered = recover_results(batch);
  // Duplicated columns recover to exactly the centroid's trajectory.
  for (std::size_t r = 0; r < recovered.rows(); ++r) {
    EXPECT_FLOAT_EQ(recovered.at(r, 5), recovered.at(r, 0));
    EXPECT_FLOAT_EQ(recovered.at(r, 6), recovered.at(r, 0));
  }
}

TEST(PostConv, CentroidColumnFollowsPlainFeedForward) {
  auto fx = Fixture::make(3);
  auto batch = convert_to_compressed(fx.y_t, {0, 1}, 0.0f);
  DenseMatrix scratch(fx.y_t.rows(), fx.y_t.cols());
  post_convergence_layer(fx.net.weight(fx.t), fx.net.bias(fx.t),
                         fx.net.ymax(), 0.0f, batch, scratch);
  // Centroid column 0 must equal σ(W·y0 + b) computed directly.
  DenseMatrix single(fx.y_t.rows(), 1);
  for (std::size_t r = 0; r < fx.y_t.rows(); ++r) {
    single.at(r, 0) = fx.y_t.at(r, 0);
  }
  DenseMatrix out(fx.y_t.rows(), 1);
  sparse::spmm_gather(fx.net.weight(fx.t), single, out);
  sparse::apply_bias_activation(out, fx.net.bias(fx.t), fx.net.ymax());
  for (std::size_t r = 0; r < fx.y_t.rows(); ++r) {
    EXPECT_FLOAT_EQ(batch.yhat.at(r, 0), out.at(r, 0));
  }
}

TEST(PostConv, EmptyColumnsSkippedButConsistent) {
  // Run one net twice: refresh ne_idx every layer vs never. Final results
  // must agree (stale ne_idx recomputes zero columns but stays correct).
  auto fx = Fixture::make(4, 9);
  auto batch_fresh = convert_to_compressed(fx.y_t, {0, 1}, 0.0f);
  auto batch_stale = batch_fresh;
  DenseMatrix scratch(fx.y_t.rows(), fx.y_t.cols());
  for (std::size_t l = fx.t; l < fx.net.num_layers(); ++l) {
    post_convergence_layer(fx.net.weight(l), fx.net.bias(l), fx.net.ymax(),
                           0.0f, batch_fresh, scratch);
    batch_fresh.refresh_ne_idx();
    post_convergence_layer(fx.net.weight(l), fx.net.bias(l), fx.net.ymax(),
                           0.0f, batch_stale, scratch);
    // no refresh for batch_stale
  }
  const auto a = recover_results(batch_fresh);
  const auto b = recover_results(batch_stale);
  EXPECT_FLOAT_EQ(DenseMatrix::max_abs_diff(a, b), 0.0f);
}

TEST(PostConv, PruningReducesNonEmptyColumns) {
  auto fx = Fixture::make(6, 21);
  auto strict = convert_to_compressed(fx.y_t, {0, 1, 2}, 0.0f);
  auto pruned = convert_to_compressed(fx.y_t, {0, 1, 2}, 0.05f);
  DenseMatrix scratch(fx.y_t.rows(), fx.y_t.cols());
  for (std::size_t l = fx.t; l < fx.net.num_layers(); ++l) {
    post_convergence_layer(fx.net.weight(l), fx.net.bias(l), fx.net.ymax(),
                           0.0f, strict, scratch);
    strict.refresh_ne_idx();
    post_convergence_layer(fx.net.weight(l), fx.net.bias(l), fx.net.ymax(),
                           0.05f, pruned, scratch);
    pruned.refresh_ne_idx();
  }
  EXPECT_LE(pruned.ne_idx.size(), strict.ne_idx.size());
  EXPECT_LE(pruned.yhat.count_nonzeros(), strict.yhat.count_nonzeros());
}

TEST(PostConv, ScatterOverloadMatchesGatherOverload) {
  auto fx = Fixture::make(5, 33);
  auto a = convert_to_compressed(fx.y_t, {0, 1, 2}, 0.0f);
  auto b = a;
  DenseMatrix scratch(fx.y_t.rows(), fx.y_t.cols());
  fx.net.ensure_csc();
  for (std::size_t l = fx.t; l < fx.net.num_layers(); ++l) {
    post_convergence_layer(fx.net.weight(l), fx.net.bias(l), fx.net.ymax(),
                           0.0f, a, scratch);
    a.refresh_ne_idx();
    post_convergence_layer(fx.net.weight_csc(l), fx.net.bias(l),
                           fx.net.ymax(), 0.0f, b, scratch);
    b.refresh_ne_idx();
  }
  // Different accumulation orders inside the multiply: tolerance compare.
  EXPECT_LE(DenseMatrix::max_abs_diff(recover_results(a),
                                      recover_results(b)),
            1e-4f);
  EXPECT_EQ(a.ne_idx.size(), b.ne_idx.size());
}

}  // namespace
}  // namespace snicit::core
