#include "snicit/warm_cache.hpp"

#include <gtest/gtest.h>

#include "snicit/engine.hpp"

#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "radixnet/radixnet.hpp"

namespace snicit::core {
namespace {

struct Workload {
  dnn::SparseDnn net;
  dnn::DenseMatrix batch1;
  dnn::DenseMatrix batch2;
};

Workload make_workload() {
  radixnet::RadixNetOptions opt;
  opt.neurons = 128;
  opt.layers = 20;
  opt.fanin = 16;
  opt.seed = 40;
  auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = 128;
  in_opt.batch = 80;
  in_opt.classes = 6;
  in_opt.seed = 41;  // both batches drawn from the same distribution
  const auto full = data::make_sdgc_input(in_opt);
  Workload wl{std::move(net), {}, {}};
  wl.batch1 = full.features;  // first 80 columns
  data::SdgcInputOptions second = in_opt;
  second.seed = 41;  // same prototypes (same seed), fresh batch slice
  auto other = data::make_sdgc_input(second);
  wl.batch2 = other.features;
  return wl;
}

SnicitParams base_params() {
  SnicitParams p;
  p.threshold_layer = 8;
  p.sample_size = 24;
  p.downsample_dim = 0;
  return p;
}

TEST(ConvertWithCache, AppendsCentroidColumns) {
  DenseMatrix y(8, 4, 1.0f);
  CentroidCache cache;
  cache.columns.reset(8, 2);
  cache.columns.fill(1.0f);
  for (std::size_t r = 0; r < 8; ++r) {
    cache.columns.at(r, 1) = 5.0f;
  }
  const auto batch = convert_with_cache(y, cache, 0.0f);
  EXPECT_EQ(batch.batch(), 6u);  // 4 originals + 2 cached
  EXPECT_TRUE(batch.is_centroid(4));
  EXPECT_TRUE(batch.is_centroid(5));
  // Originals (all 1.0) map to the first cached centroid with zero
  // residue.
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(batch.mapper[j], 4);
    EXPECT_EQ(batch.ne_rec[j], 0);
  }
}

TEST(WarmEngine, ColdRunMatchesPlainSnicit) {
  auto wl = make_workload();
  WarmSnicitEngine warm(base_params());
  SnicitEngine plain(base_params());
  const auto a = warm.run(wl.net, wl.batch1);
  const auto b = plain.run(wl.net, wl.batch1);
  EXPECT_FLOAT_EQ(dnn::DenseMatrix::max_abs_diff(a.output, b.output), 0.0f);
  EXPECT_TRUE(warm.warmed());
  EXPECT_DOUBLE_EQ(a.diagnostics.at("warm"), 0.0);
}

TEST(WarmEngine, WarmRunMatchesReference) {
  auto wl = make_workload();
  WarmSnicitEngine warm(base_params());
  warm.run(wl.net, wl.batch1);  // establish cache
  const auto result = warm.run(wl.net, wl.batch2);
  EXPECT_DOUBLE_EQ(result.diagnostics.at("warm"), 1.0);
  const auto golden = dnn::reference_forward(wl.net, wl.batch2);
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, golden), 5e-3f);
  EXPECT_EQ(result.output.cols(), wl.batch2.cols());  // centroids dropped
  EXPECT_DOUBLE_EQ(
      dnn::category_match_rate(dnn::sdgc_categories(result.output, 1e-3f),
                               dnn::sdgc_categories(golden, 1e-3f)),
      1.0);
}

TEST(WarmEngine, WarmConversionSkipsSamplingCost) {
  // The warm path must not *re-derive* centroids: its cache size stays
  // fixed across runs.
  auto wl = make_workload();
  WarmSnicitEngine warm(base_params());
  warm.run(wl.net, wl.batch1);
  const auto k = warm.cache().size();
  warm.run(wl.net, wl.batch2);
  warm.run(wl.net, wl.batch1);
  EXPECT_EQ(warm.cache().size(), k);
}

TEST(WarmEngine, ResetForcesRecalibration) {
  auto wl = make_workload();
  WarmSnicitEngine warm(base_params());
  warm.run(wl.net, wl.batch1);
  ASSERT_TRUE(warm.warmed());
  warm.reset();
  EXPECT_FALSE(warm.warmed());
  const auto result = warm.run(wl.net, wl.batch2);
  EXPECT_DOUBLE_EQ(result.diagnostics.at("warm"), 0.0);  // cold again
  EXPECT_TRUE(warm.warmed());
}

TEST(WarmEngineDeathTest, AutoThresholdRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        auto params = base_params();
        params.auto_threshold = true;
        WarmSnicitEngine warm(params);
      },
      "auto_threshold");
}

// Property sweep: warm runs agree with the exact reference across seeds.
class WarmFuzz : public ::testing::TestWithParam<int> {};

TEST_P(WarmFuzz, WarmRunsTrackReference) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  radixnet::RadixNetOptions opt;
  opt.neurons = 96;
  opt.layers = 14;
  opt.fanin = 12;
  opt.seed = seed;
  const auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = 96;
  in_opt.batch = 30;
  in_opt.seed = seed + 1;
  const auto first = data::make_sdgc_input(in_opt).features;
  in_opt.seed = seed + 2;  // fresh prototypes: mild distribution shift
  const auto second = data::make_sdgc_input(in_opt).features;

  auto params = base_params();
  params.threshold_layer = 6;
  WarmSnicitEngine warm(params);
  warm.run(net, first);
  const auto result = warm.run(net, second);
  const auto golden = dnn::reference_forward(net, second);
  // Even under prototype shift the cached-centroid path is exact without
  // pruning: residues are just denser.
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, golden), 5e-3f)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmFuzz, ::testing::Range(1, 7));

}  // namespace
}  // namespace snicit::core
