#include "platform/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace snicit::platform {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(77);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(77);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.uniform(-2.0f, 3.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(Rng, NextBelowCoversRangeWithoutOverflow) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values reached
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(17);
  const int n = 50000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  // Regression pin: the generator must never silently change, or every
  // synthetic benchmark in the repo changes with it.
  SplitMix64 sm(0);
  const auto a = sm.next();
  const auto b = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), a);
  EXPECT_EQ(sm2.next(), b);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace snicit::platform
