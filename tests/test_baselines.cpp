#include <gtest/gtest.h>

#include "baselines/bf2019.hpp"
#include "baselines/snig2020.hpp"
#include "baselines/xy2021.hpp"
#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "platform/thread_pool.hpp"
#include "radixnet/radixnet.hpp"

namespace snicit::baselines {
namespace {

struct TestCase {
  dnn::SparseDnn net;
  dnn::DenseMatrix input;
  dnn::DenseMatrix expected;
};

TestCase make_case(sparse::Index neurons, int layers, std::size_t batch,
                   std::uint64_t seed) {
  radixnet::RadixNetOptions opt;
  opt.neurons = neurons;
  opt.layers = layers;
  opt.fanin = 8;
  opt.seed = seed;
  auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = static_cast<std::size_t>(neurons);
  in_opt.batch = batch;
  in_opt.seed = seed + 1;
  auto input = data::make_sdgc_input(in_opt).features;
  auto expected = dnn::reference_forward(net, input);
  return {std::move(net), std::move(input), std::move(expected)};
}

// The champion engines are exact methods: outputs must match the golden
// reference up to kernel-order float noise.
constexpr float kTol = 1e-4f;

TEST(Bf2019, MatchesReference) {
  auto tc = make_case(96, 10, 33, 1);
  Bf2019Engine engine(4);
  const auto result = engine.run(tc.net, tc.input);
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, tc.expected), kTol);
  EXPECT_EQ(result.layer_ms.size(), 10u);
  EXPECT_DOUBLE_EQ(result.diagnostics.at("partitions"), 4.0);
}

TEST(Bf2019, SinglePartitionStillCorrect) {
  auto tc = make_case(64, 6, 10, 2);
  Bf2019Engine engine(1);
  const auto result = engine.run(tc.net, tc.input);
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, tc.expected), kTol);
}

TEST(Bf2019, MorePartitionsThanColumns) {
  auto tc = make_case(64, 4, 3, 3);
  Bf2019Engine engine(16);
  const auto result = engine.run(tc.net, tc.input);
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, tc.expected), kTol);
}

TEST(Snig2020, MatchesReference) {
  auto tc = make_case(96, 12, 40, 4);
  Snig2020Engine engine(4, 3);
  const auto result = engine.run(tc.net, tc.input);
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, tc.expected), kTol);
  EXPECT_GT(result.diagnostics.at("graph_nodes"), 0.0);
}

TEST(Snig2020, OddLayerCountBufferParity) {
  auto tc = make_case(64, 7, 12, 5);  // odd layer count
  Snig2020Engine engine(3, 2);
  const auto result = engine.run(tc.net, tc.input);
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, tc.expected), kTol);
}

TEST(Snig2020, SingleLayerPerTask) {
  auto tc = make_case(48, 5, 9, 6);
  Snig2020Engine engine(2, 1);
  const auto result = engine.run(tc.net, tc.input);
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, tc.expected), kTol);
}

TEST(Snig2020, FusedStagesLargerThanDepth) {
  auto tc = make_case(48, 3, 9, 7);
  Snig2020Engine engine(2, 100);
  const auto result = engine.run(tc.net, tc.input);
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, tc.expected), kTol);
}

TEST(Xy2021, MatchesReference) {
  auto tc = make_case(96, 10, 25, 8);
  Xy2021Engine engine;
  const auto result = engine.run(tc.net, tc.input);
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, tc.expected), kTol);
}

TEST(Xy2021, CostModelIsDensitySensitive) {
  // Engine level: every layer is attributed to exactly one kernel family.
  auto tc = make_case(128, 16, 32, 9);
  Xy2021Engine engine;
  const auto result = engine.run(tc.net, tc.input);
  const double gather = result.diagnostics.at("gather_layers");
  const double scatter = result.diagnostics.at("scatter_layers");
  EXPECT_EQ(gather + scatter, 16.0);

  // Selector level: the cost model must route near-empty activations to a
  // zero-skipping scatter arm and dense activations to a gather arm (the
  // property the old two-arm threshold encoded).
  sparse::SpmmProblem problem;
  problem.rows = 1024;
  problem.nnz = 32 * 1024;
  problem.batch_cols = 32;
  problem.has_csc = true;
  sparse::SpmmPolicy policy;
  problem.density = 0.005;
  const auto sparse_pick = sparse::select_spmm_variant(problem, policy);
  EXPECT_TRUE(sparse_pick == sparse::SpmmVariant::kScatter ||
              sparse_pick == sparse::SpmmVariant::kScatterSimd);
  problem.density = 1.0;
  const auto dense_pick = sparse::select_spmm_variant(problem, policy);
  EXPECT_TRUE(dense_pick != sparse::SpmmVariant::kScatter &&
              dense_pick != sparse::SpmmVariant::kScatterSimd);
}

TEST(Xy2021, PerLayerTimesRecorded) {
  auto tc = make_case(64, 8, 16, 10);
  Xy2021Engine engine;
  const auto result = engine.run(tc.net, tc.input);
  EXPECT_EQ(result.layer_ms.size(), 8u);
  for (double ms : result.layer_ms) {
    EXPECT_GE(ms, 0.0);
  }
}

// Cross-engine agreement sweep over shapes: every engine must produce the
// same categories as the reference.
class EngineAgreement
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(EngineAgreement, AllEnginesMatchReference) {
  const auto [neurons, layers, batch] = GetParam();
  auto tc = make_case(neurons, layers, static_cast<std::size_t>(batch),
                      static_cast<std::uint64_t>(neurons + layers + batch));
  Bf2019Engine bf(2);
  Snig2020Engine snig(2, 2);
  Xy2021Engine xy;
  for (dnn::InferenceEngine* engine :
       std::initializer_list<dnn::InferenceEngine*>{&bf, &snig, &xy}) {
    const auto result = engine->run(tc.net, tc.input);
    EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, tc.expected),
              kTol)
        << engine->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineAgreement,
    ::testing::Values(std::make_tuple(32, 1, 1), std::make_tuple(32, 2, 5),
                      std::make_tuple(64, 9, 17),
                      std::make_tuple(128, 6, 64)));

// Kernel-policy regression guard: the engines' results must not depend on
// which spMM variant the autotuner picks — force every arm in turn.
TEST(BaselineKernelPolicy, EveryForcedVariantMatchesReference) {
  auto tc = make_case(96, 8, 24, 12);
  for (int i = -1; i < sparse::kNumSpmmVariants; ++i) {
    sparse::SpmmPolicy policy;
    policy.variant = static_cast<sparse::SpmmVariant>(i);
    Bf2019Engine bf(2, policy);
    Snig2020Engine snig(2, 2, policy);
    Xy2021Options xopt;
    xopt.policy = policy;
    Xy2021Engine xy(xopt);
    for (dnn::InferenceEngine* engine :
         std::initializer_list<dnn::InferenceEngine*>{&bf, &snig, &xy}) {
      const auto result = engine->run(tc.net, tc.input);
      EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, tc.expected),
                kTol)
          << engine->name() << " forced "
          << sparse::to_string(policy.variant);
    }
  }
}

// Thread-count regression guard: one pool worker (serial region) and the
// full pool must produce the same results.
TEST(BaselineKernelPolicy, SerialRegionMatchesPooled) {
  auto tc = make_case(96, 8, 24, 13);
  platform::ScopedSerialRegion serial;
  Bf2019Engine bf(2);
  Snig2020Engine snig(2, 2);
  Xy2021Engine xy;
  for (dnn::InferenceEngine* engine :
       std::initializer_list<dnn::InferenceEngine*>{&bf, &snig, &xy}) {
    const auto result = engine->run(tc.net, tc.input);
    EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, tc.expected),
              kTol)
        << engine->name() << " (serial region)";
  }
}

}  // namespace
}  // namespace snicit::baselines
