// Concurrency/correctness suite for the parallel serving pipeline:
// bit-exact equivalence of ParallelStreamExecutor against the serial
// stream_inference path across engines (reference, SNICIT, warm-cache),
// worker counts, batch sizes that do not divide the sample count, and a
// seeded scheduler-jitter stress harness checking per-sample category
// parity with the exact reference.
#include "snicit/parallel_stream.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <tuple>

#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "platform/error.hpp"
#include "platform/rng.hpp"
#include "radixnet/radixnet.hpp"
#include "snicit/engine.hpp"
#include "snicit/stream.hpp"
#include "snicit/warm_cache.hpp"

namespace snicit::core {
namespace {

struct Workload {
  dnn::SparseDnn net;
  dnn::DenseMatrix input;
};

Workload make_workload(std::size_t samples, std::uint64_t seed = 3,
                       sparse::Index neurons = 96, int layers = 10) {
  radixnet::RadixNetOptions opt;
  opt.neurons = neurons;
  opt.layers = layers;
  opt.fanin = 8;
  opt.seed = seed;
  auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = static_cast<std::size_t>(neurons);
  in_opt.batch = samples;
  in_opt.seed = seed + 1;
  auto input = data::make_sdgc_input(in_opt).features;
  return {std::move(net), std::move(input)};
}

enum class Kind { kReference, kSnicit, kWarm };

std::unique_ptr<dnn::InferenceEngine> make_engine(Kind kind) {
  SnicitParams params;
  params.threshold_layer = 4;
  switch (kind) {
    case Kind::kReference:
      return std::make_unique<dnn::ReferenceEngine>();
    case Kind::kSnicit:
      return std::make_unique<SnicitEngine>(params);
    case Kind::kWarm:
      return std::make_unique<WarmSnicitEngine>(params);
  }
  return nullptr;
}

class ParallelStreamEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ParallelStreamEquivalence, BitExactVsSerial) {
  const auto kind = static_cast<Kind>(std::get<0>(GetParam()));
  const auto workers = static_cast<std::size_t>(std::get<1>(GetParam()));
  const auto batch = static_cast<std::size_t>(std::get<2>(GetParam()));
  auto wl = make_workload(50);  // 50 % 16 == 2, 50 % 7 == 1: partial tails

  auto serial_engine = make_engine(kind);
  StreamOptions serial_opt;
  serial_opt.batch_size = batch;
  const auto serial =
      stream_inference(*serial_engine, wl.net, wl.input, serial_opt);

  auto pooled_engine = make_engine(kind);
  ParallelStreamOptions opt;
  opt.batch_size = batch;
  opt.workers = workers;
  const ParallelStreamExecutor executor(opt);
  const auto parallel = executor.run(*pooled_engine, wl.net, wl.input);

  EXPECT_EQ(parallel.batches, serial.batches);
  EXPECT_EQ(parallel.batch_ms.size(), serial.batch_ms.size());
  EXPECT_EQ(parallel.outputs.rows(), serial.outputs.rows());
  EXPECT_EQ(parallel.outputs.cols(), 50u);
  EXPECT_EQ(parallel.latency.count(), parallel.batches);
  EXPECT_GT(parallel.total_ms, 0.0);
  EXPECT_FLOAT_EQ(
      dnn::DenseMatrix::max_abs_diff(parallel.outputs, serial.outputs), 0.0f)
      << "engine kind " << std::get<0>(GetParam()) << " workers " << workers
      << " batch " << batch;
}

INSTANTIATE_TEST_SUITE_P(
    EnginesWorkersBatches, ParallelStreamEquivalence,
    ::testing::Combine(::testing::Values(0, 1, 2),        // engine kind
                       ::testing::Values(1, 2, 4, 7),     // workers
                       ::testing::Values(16, 7)));        // batch size

TEST(ParallelStream, KeepRowsTruncatesLikeSerial) {
  auto wl = make_workload(41);
  SnicitParams params;
  params.threshold_layer = 4;
  SnicitEngine serial_engine(params);
  StreamOptions serial_opt;
  serial_opt.batch_size = 8;
  serial_opt.keep_rows = 5;
  const auto serial =
      stream_inference(serial_engine, wl.net, wl.input, serial_opt);

  SnicitEngine pooled(params);
  ParallelStreamOptions opt;
  opt.batch_size = 8;
  opt.keep_rows = 5;
  opt.workers = 4;
  const auto parallel =
      ParallelStreamExecutor(opt).run(pooled, wl.net, wl.input);
  EXPECT_EQ(parallel.outputs.rows(), 5u);
  EXPECT_FLOAT_EQ(
      dnn::DenseMatrix::max_abs_diff(parallel.outputs, serial.outputs), 0.0f);
}

TEST(ParallelStream, KeepRowsBeyondNeuronsClamps) {
  auto wl = make_workload(30);
  dnn::ReferenceEngine engine;
  ParallelStreamOptions opt;
  opt.batch_size = 4;
  opt.keep_rows = 500;  // > 96 neurons: clamps to the full column
  opt.workers = 3;
  const auto parallel =
      ParallelStreamExecutor(opt).run(engine, wl.net, wl.input);
  EXPECT_EQ(parallel.outputs.rows(), 96u);
  const auto expected = dnn::reference_forward(wl.net, wl.input);
  EXPECT_FLOAT_EQ(
      dnn::DenseMatrix::max_abs_diff(parallel.outputs, expected), 0.0f);
}

TEST(ParallelStream, SingleBatchFallsBackToSerial) {
  auto wl = make_workload(5);
  dnn::ReferenceEngine engine;
  ParallelStreamOptions opt;
  opt.batch_size = 100;  // one batch, nothing to overlap
  opt.workers = 8;
  const auto parallel =
      ParallelStreamExecutor(opt).run(engine, wl.net, wl.input);
  EXPECT_EQ(parallel.batches, 1u);
  EXPECT_EQ(parallel.outputs.cols(), 5u);
  const auto expected = dnn::reference_forward(wl.net, wl.input);
  EXPECT_FLOAT_EQ(
      dnn::DenseMatrix::max_abs_diff(parallel.outputs, expected), 0.0f);
}

TEST(ParallelStream, ZeroSamples) {
  auto wl = make_workload(10);
  dnn::DenseMatrix empty(wl.input.rows(), 0);
  dnn::ReferenceEngine engine;
  ParallelStreamOptions opt;
  opt.batch_size = 8;
  opt.workers = 4;
  const auto parallel = ParallelStreamExecutor(opt).run(engine, wl.net, empty);
  EXPECT_EQ(parallel.batches, 0u);
  EXPECT_EQ(parallel.outputs.cols(), 0u);
  EXPECT_EQ(parallel.outputs.rows(), wl.input.rows());
  EXPECT_EQ(parallel.latency.count(), 0u);
}

TEST(ParallelStream, MoreWorkersThanBatches) {
  auto wl = make_workload(50);
  dnn::ReferenceEngine engine;
  ParallelStreamOptions opt;
  opt.batch_size = 16;  // 4 batches
  opt.workers = 64;     // clamped to the 3 pooled batches
  const auto parallel =
      ParallelStreamExecutor(opt).run(engine, wl.net, wl.input);
  const auto expected = dnn::reference_forward(wl.net, wl.input);
  EXPECT_FLOAT_EQ(
      dnn::DenseMatrix::max_abs_diff(parallel.outputs, expected), 0.0f);
}

TEST(ParallelStream, TinyQueueCapacityStillExact) {
  auto wl = make_workload(60);
  SnicitParams params;
  params.threshold_layer = 4;
  SnicitEngine serial_engine(params);
  const auto serial = stream_inference(serial_engine, wl.net, wl.input,
                                       {.batch_size = 5, .keep_rows = 0});
  SnicitEngine pooled(params);
  ParallelStreamOptions opt;
  opt.batch_size = 5;
  opt.workers = 4;
  opt.queue_capacity = 1;  // maximum backpressure on the producer
  const auto parallel =
      ParallelStreamExecutor(opt).run(pooled, wl.net, wl.input);
  EXPECT_FLOAT_EQ(
      dnn::DenseMatrix::max_abs_diff(parallel.outputs, serial.outputs), 0.0f);
}

TEST(ParallelStream, WarmEngineIsWarmedByFirstBatch) {
  auto wl = make_workload(50);
  SnicitParams params;
  params.threshold_layer = 4;
  WarmSnicitEngine engine(params);
  ParallelStreamOptions opt;
  opt.batch_size = 10;
  opt.workers = 3;
  const auto parallel =
      ParallelStreamExecutor(opt).run(engine, wl.net, wl.input);
  EXPECT_TRUE(engine.warmed());
  EXPECT_EQ(parallel.batches, 5u);
}

// An engine without clone(): pooled serving must refuse it loudly, while
// the one-worker configuration still works through the serial path.
class UncloneableEngine final : public dnn::InferenceEngine {
 public:
  std::string name() const override { return "uncloneable"; }
  dnn::RunResult run(const dnn::SparseDnn& net,
                     const dnn::DenseMatrix& input) override {
    dnn::RunResult result;
    result.output = dnn::reference_forward(net, input);
    return result;
  }
};

TEST(ParallelStream, UncloneableEngineThrowsForPools) {
  auto wl = make_workload(50);
  UncloneableEngine engine;
  ParallelStreamOptions opt;
  opt.batch_size = 10;
  opt.workers = 4;
  // Clone failure is a typed kBadInput error (still a std::runtime_error
  // for legacy catch sites).
  try {
    ParallelStreamExecutor(opt).run(engine, wl.net, wl.input);
    FAIL() << "expected ErrorException";
  } catch (const platform::ErrorException& e) {
    EXPECT_EQ(e.code(), platform::ErrorCode::kBadInput);
  }

  opt.workers = 1;  // serial path needs no clone
  const auto serial = ParallelStreamExecutor(opt).run(engine, wl.net, wl.input);
  const auto expected = dnn::reference_forward(wl.net, wl.input);
  EXPECT_FLOAT_EQ(
      dnn::DenseMatrix::max_abs_diff(serial.outputs, expected), 0.0f);
}

TEST(ParallelStream, WorkerExceptionIsolatedToItsBatches) {
  // An engine whose clones always throw: under the resilient executor a
  // worker fault no longer aborts the stream — every worker-served batch
  // exhausts its retries and lands in StreamResult::failures, while the
  // warm-up batch (run on the caller's engine) still succeeds and the
  // pool drains cleanly.
  class FailingEngine final : public dnn::InferenceEngine {
   public:
    std::string name() const override { return "failing"; }
    dnn::RunResult run(const dnn::SparseDnn& net,
                       const dnn::DenseMatrix& input) override {
      // The warm-up batch (first call, on the caller) succeeds so the
      // failure happens inside a worker thread.
      if (calls_++ > 0) throw std::runtime_error("engine blew up");
      dnn::RunResult result;
      result.output = dnn::reference_forward(net, input);
      return result;
    }
    std::unique_ptr<dnn::InferenceEngine> clone() const override {
      return std::make_unique<FailingEngine>(*this);
    }

   private:
    int calls_ = 0;
  };

  auto wl = make_workload(50);
  FailingEngine engine;
  ParallelStreamOptions opt;
  opt.batch_size = 5;
  opt.workers = 4;
  opt.max_attempts = 2;
  opt.retry_backoff_ms = 0.0;
  const auto result = ParallelStreamExecutor(opt).run(engine, wl.net, wl.input);
  EXPECT_EQ(result.batches, 10u);
  // Batch 0 ran on the caller's engine and succeeded; all 9 worker-served
  // batches failed after their retry budget.
  EXPECT_EQ(result.lost_batches(), 9u);
  EXPECT_FALSE(result.complete());
  EXPECT_GE(result.retries, 9u);  // every failed batch got a second try
  for (const auto& failure : result.failures) {
    EXPECT_NE(failure.batch, 0u);
    EXPECT_EQ(failure.code, platform::ErrorCode::kWorkerFault);
    EXPECT_EQ(failure.attempts, 2u);
    EXPECT_NE(failure.message.find("engine blew up"), std::string::npos);
  }
  // Failed batches keep zeroed output columns; batch 0's are intact.
  const auto expected = dnn::reference_forward(wl.net, wl.input);
  for (std::size_t j = 0; j < 5; ++j) {
    for (std::size_t r = 0; r < expected.rows(); ++r) {
      EXPECT_EQ(result.outputs.at(r, j), expected.at(r, j));
    }
  }
  for (std::size_t j = 5; j < 50; ++j) {
    for (std::size_t r = 0; r < result.outputs.rows(); ++r) {
      EXPECT_EQ(result.outputs.at(r, j), 0.0f);
    }
  }
}

// --- Seeded scheduler-jitter stress harness -------------------------------
//
// Wraps SNICIT in an engine that sleeps a random few hundred microseconds
// before and after every run, so batch completion order is scrambled
// differently on every schedule. Output values are untouched: whatever
// the interleaving, reassembly must stay deterministic.
class JitterSnicitEngine final : public dnn::InferenceEngine {
 public:
  JitterSnicitEngine(SnicitParams params, std::uint64_t seed)
      : inner_(params), rng_(seed) {}

  std::string name() const override { return "jitter-snicit"; }

  dnn::RunResult run(const dnn::SparseDnn& net,
                     const dnn::DenseMatrix& input) override {
    nap();
    auto result = inner_.run(net, input);
    nap();
    return result;
  }

  std::unique_ptr<dnn::InferenceEngine> clone() const override {
    // Each clone jitters on its own schedule.
    return std::make_unique<JitterSnicitEngine>(
        inner_.params(), next_clone_seed_.fetch_add(1) * 7919u + 13u);
  }

 private:
  void nap() {
    std::this_thread::sleep_for(
        std::chrono::microseconds(rng_.next_below(400)));
    std::this_thread::yield();
  }

  SnicitEngine inner_;
  platform::Rng rng_;
  static inline std::atomic<std::uint64_t> next_clone_seed_{1};
};

class ParallelStressFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParallelStressFuzz, ManySmallBatchesKeepCategoryParity) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  platform::Rng rng(seed * 2654435761ULL + 5);

  const std::size_t samples = 120 + rng.next_below(80);
  auto wl = make_workload(samples, seed, 64, 8);
  const auto golden = dnn::reference_forward(wl.net, wl.input);

  SnicitParams params;
  params.threshold_layer = 3;
  params.sample_size = 16;

  JitterSnicitEngine serial_engine(params, seed);
  StreamOptions serial_opt;
  serial_opt.batch_size = 3 + rng.next_below(6);
  const auto serial =
      stream_inference(serial_engine, wl.net, wl.input, serial_opt);

  JitterSnicitEngine pooled(params, seed + 1000);
  ParallelStreamOptions opt;
  opt.batch_size = serial_opt.batch_size;
  opt.workers = 4 + rng.next_below(4);           // 4..7 workers
  opt.queue_capacity = 1 + rng.next_below(8);    // vary the backpressure
  const auto parallel =
      ParallelStreamExecutor(opt).run(pooled, wl.net, wl.input);

  // Reassembly is deterministic: bit-identical to the serial stream.
  EXPECT_FLOAT_EQ(
      dnn::DenseMatrix::max_abs_diff(parallel.outputs, serial.outputs), 0.0f)
      << "seed " << seed << " B=" << opt.batch_size << " W=" << opt.workers
      << " q=" << opt.queue_capacity;

  // And per-sample categories agree with the exact reference.
  const auto got = dnn::sdgc_categories(parallel.outputs, 1e-3f);
  const auto want = dnn::sdgc_categories(golden, 1e-3f);
  EXPECT_DOUBLE_EQ(dnn::category_match_rate(got, want), 1.0)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelStressFuzz, ::testing::Range(1, 7));

}  // namespace
}  // namespace snicit::core
