#include "sparse/spgemm.hpp"

#include <gtest/gtest.h>

#include "platform/rng.hpp"
#include "sparse/spmm.hpp"

namespace snicit::sparse {
namespace {

CsrMatrix random_csr(Index rows, Index cols, double density,
                     std::uint64_t seed) {
  platform::Rng rng(seed);
  CooMatrix coo(rows, cols);
  for (Index r = 0; r < rows; ++r) {
    for (Index c = 0; c < cols; ++c) {
      if (rng.next_bool(density)) {
        coo.add(r, c, rng.uniform(-1.0f, 1.0f));
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

TEST(DenseToCsc, DropsBelowTolerance) {
  DenseMatrix y(3, 2);
  y.at(0, 0) = 1.0f;
  y.at(1, 0) = 0.005f;
  y.at(2, 1) = -2.0f;
  const auto strict = dense_to_csc(y, 0.0f);
  EXPECT_EQ(strict.nnz(), 3);
  const auto pruned = dense_to_csc(y, 0.01f);
  EXPECT_EQ(pruned.nnz(), 2);
}

TEST(DenseToCsc, RoundTripThroughDense) {
  platform::Rng rng(2);
  DenseMatrix y(20, 7);
  for (std::size_t i = 0; i < 140; ++i) {
    if (rng.next_bool(0.3)) y.data()[i] = rng.uniform(-3.0f, 3.0f);
  }
  const auto back = csc_to_dense(dense_to_csc(y));
  EXPECT_FLOAT_EQ(DenseMatrix::max_abs_diff(back, y), 0.0f);
}

TEST(Spgemm, MatchesSpmmOnDensifiedInput) {
  const auto w = random_csr(24, 24, 0.2, 3);
  platform::Rng rng(4);
  DenseMatrix y(24, 10);
  for (std::size_t i = 0; i < 240; ++i) {
    if (rng.next_bool(0.25)) y.data()[i] = rng.uniform(0.0f, 2.0f);
  }
  DenseMatrix expected(24, 10);
  spmm_gather(w, y, expected);

  DenseMatrix out(24, 10);
  spgemm(CscMatrix::from_csr(w), dense_to_csc(y), out);
  EXPECT_LE(DenseMatrix::max_abs_diff(out, expected), 1e-4f);
}

TEST(Spgemm, EmptyOperands) {
  CooMatrix empty(8, 8);
  const auto a = CscMatrix::from_coo(empty);
  const auto b = CscMatrix::from_coo(empty);
  DenseMatrix out(8, 8, 9.0f);
  spgemm(a, b, out);
  EXPECT_EQ(out.count_nonzeros(), 0u);  // fully overwritten with zeros
}

TEST(Spgemm, HandComputed) {
  // A = [[1, 0], [2, 3]], B = [[0, 4], [5, 0]] -> AB = [[0,4],[15,8]].
  CooMatrix a_coo(2, 2);
  a_coo.add(0, 0, 1.0f);
  a_coo.add(1, 0, 2.0f);
  a_coo.add(1, 1, 3.0f);
  CooMatrix b_coo(2, 2);
  b_coo.add(0, 1, 4.0f);
  b_coo.add(1, 0, 5.0f);
  DenseMatrix out(2, 2);
  spgemm(CscMatrix::from_coo(a_coo), CscMatrix::from_coo(b_coo), out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 15.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 8.0f);
}

// Property: spGEMM == spMM on random sparse pairs.
class SpgemmEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SpgemmEquivalence, AgreesWithSpmm) {
  const int seed = GetParam();
  platform::Rng rng(static_cast<std::uint64_t>(seed));
  const Index n = 16 + static_cast<Index>(rng.next_below(48));
  const Index b = 1 + static_cast<Index>(rng.next_below(20));
  const auto w = random_csr(n, n, 0.15, static_cast<std::uint64_t>(seed) * 7);
  DenseMatrix y(static_cast<std::size_t>(n), static_cast<std::size_t>(b));
  for (std::size_t i = 0; i < y.rows() * y.cols(); ++i) {
    if (rng.next_bool(0.2)) y.data()[i] = rng.uniform(-2.0f, 2.0f);
  }
  DenseMatrix expected(y.rows(), y.cols());
  spmm_gather(w, y, expected);
  DenseMatrix out(y.rows(), y.cols());
  spgemm(CscMatrix::from_csr(w), dense_to_csc(y), out);
  EXPECT_LE(DenseMatrix::max_abs_diff(out, expected), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpgemmEquivalence, ::testing::Range(1, 11));

}  // namespace
}  // namespace snicit::sparse
