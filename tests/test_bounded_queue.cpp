// BoundedQueue: FIFO + capacity semantics single-threaded, backpressure
// (a full queue blocks its producer until a consumer pops), close/drain
// shutdown, and a multi-producer/multi-consumer stress run asserting
// exactly-once delivery.
#include "platform/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

namespace snicit::platform {
namespace {

TEST(BoundedQueue, FifoOrderSingleThreaded) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.push(i), ErrorCode::kOk);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_FALSE(q.try_push(99));  // full
  for (int i = 0; i < 4; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, PushBlocksUntilConsumerMakesRoom) {
  BoundedQueue<int> q(2);
  ASSERT_EQ(q.push(1), ErrorCode::kOk);
  ASSERT_EQ(q.push(2), ErrorCode::kOk);

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_EQ(q.push(3), ErrorCode::kOk);  // blocks until the pop below
    pushed.store(true);
  });

  // The producer must be parked: the queue is at capacity.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.size(), 2u);

  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BoundedQueue, CloseDrainsThenReportsExhaustion) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.push(7), ErrorCode::kOk);
  EXPECT_EQ(q.push(8), ErrorCode::kOk);
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.push(9), ErrorCode::kQueueClosed);  // closed: rejected
  EXPECT_EQ(q.pop().value(), 7);  // remaining items still drain
  EXPECT_EQ(q.pop().value(), 8);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.pop().has_value());  // stays exhausted
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(2);
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    EXPECT_FALSE(q.pop().has_value());  // blocks until close
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done.load());
  q.close();
  consumer.join();
  EXPECT_TRUE(done.load());
}

TEST(BoundedQueue, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_EQ(q.push(1), ErrorCode::kOk);
  std::atomic<bool> rejected{false};
  std::thread producer([&] {
    rejected.store(q.push(2) == ErrorCode::kQueueClosed);  // blocks
                                                            // until close
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
  EXPECT_TRUE(rejected.load());
}

TEST(BoundedQueue, CloseWakesEveryBlockedProducerWithQueueClosed) {
  // Regression: close() must wake *all* producers parked on a full queue
  // (notify_all on not_full_), each observing kQueueClosed — a lost
  // wakeup here deadlocks the serving pipeline's shutdown drain.
  BoundedQueue<int> q(1);
  ASSERT_EQ(q.push(0), ErrorCode::kOk);
  constexpr int kProducers = 4;
  std::atomic<int> closed_count{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      if (q.push(p + 1) == ErrorCode::kQueueClosed) {
        closed_count.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(closed_count.load(), 0);  // all parked: queue is full
  q.close();
  for (auto& t : producers) t.join();
  EXPECT_EQ(closed_count.load(), kProducers);
}

TEST(BoundedQueue, MpmcDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(8);  // far smaller than the stream: real contention

  std::vector<std::vector<int>> received(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      while (auto v = q.pop()) received[c].push_back(*v);
    });
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_EQ(q.push(p * kPerProducer + i), ErrorCode::kOk);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  std::vector<int> all;
  for (const auto& r : received) all.insert(all.end(), r.begin(), r.end());
  ASSERT_EQ(all.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(all.begin(), all.end());
  std::vector<int> expected(all.size());
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(all, expected);
}

TEST(BoundedQueue, CapacityOnePingPong) {
  BoundedQueue<int> q(1);
  constexpr int kItems = 200;
  std::vector<int> out;
  std::thread consumer([&] {
    while (auto v = q.pop()) out.push_back(*v);
  });
  for (int i = 0; i < kItems; ++i) ASSERT_EQ(q.push(i), ErrorCode::kOk);
  q.close();
  consumer.join();
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(out[i], i);
}

TEST(BoundedQueue, MoveOnlyPayload) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  EXPECT_EQ(q.push(std::make_unique<int>(5)), ErrorCode::kOk);
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

TEST(BoundedQueue, CloseIsIdempotent) {
  BoundedQueue<int> q(2);
  ASSERT_EQ(q.push(1), ErrorCode::kOk);
  EXPECT_TRUE(q.close());    // first close observes the transition
  EXPECT_FALSE(q.close());   // later closes are no-ops
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.push(2), ErrorCode::kQueueClosed);
  auto v = q.pop();           // close still drains what was queued
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  EXPECT_FALSE(q.pop().has_value());
}

// Regression: concurrent double-close raced on the closed_ transition —
// every closer paid the wakeup broadcast and none could tell whether it
// closed the queue. Exactly one concurrent closer must observe the
// transition, and producers/consumers parked on the CVs must all wake.
TEST(BoundedQueue, ConcurrentDoubleCloseHasOneWinner) {
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> q(1);
    ASSERT_EQ(q.push(0), ErrorCode::kOk);  // full: producers will park
    std::atomic<int> winners{0};
    std::atomic<int> rejected{0};
    std::vector<std::thread> threads;
    threads.reserve(6);
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&] {
        if (q.push(1) == ErrorCode::kQueueClosed) rejected.fetch_add(1);
      });
    }
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        if (q.close()) winners.fetch_add(1);
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(winners.load(), 1) << "round " << round;
    EXPECT_EQ(rejected.load(), 2) << "round " << round;
    EXPECT_TRUE(q.closed());
    // The pre-close item still drains.
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 0);
    EXPECT_FALSE(q.pop().has_value());
  }
}

}  // namespace
}  // namespace snicit::platform
