// Admission-control conformance: typed intake edges on the RequestQueue,
// unit coverage of the EWMA cost model / brownout ladder / admission
// controller, and the scripted property grid — conservation of requests,
// no priority starvation, and bit-identical decision logs on replay —
// all on the virtual clock (no sleeps, no tolerances).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "baselines/serial.hpp"
#include "data/synthetic.hpp"
#include "platform/error.hpp"
#include "radixnet/radixnet.hpp"
#include "serve/dynamic_batcher.hpp"
#include "serve/load_replay.hpp"
#include "serve/load_script.hpp"
#include "serve/overload.hpp"
#include "serve/request_queue.hpp"

namespace {

using namespace snicit;
using platform::ErrorCode;

std::vector<float> sample_features(std::size_t n = 8, float fill = 0.5f) {
  return std::vector<float>(n, fill);
}

// --- RequestQueue typed edges (the zero-capacity regression) ---------

TEST(RequestQueueEdges, SubmitOnClosedQueueIsQueueClosed) {
  serve::RequestQueue queue(4);
  queue.close();
  const auto sub = queue.submit(sample_features());
  ASSERT_FALSE(sub.ok());
  EXPECT_EQ(sub.error().code, ErrorCode::kQueueClosed);
}

TEST(RequestQueueEdges, SubmitOnZeroCapacityIsRejectedOverload) {
  serve::RequestQueue queue(0);
  const auto sub = queue.submit(sample_features());
  ASSERT_FALSE(sub.ok());
  EXPECT_EQ(sub.error().code, ErrorCode::kRejectedOverload);
  // A zero-capacity queue never issues ids: nothing was accepted.
  EXPECT_EQ(queue.issued(), 0u);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(RequestQueueEdges, ClosedWinsOverZeroCapacity) {
  // Both conditions apply; closed is the stronger (terminal) signal — a
  // retry against a closed queue can never succeed, so the client must
  // not be told to retry-after.
  serve::RequestQueue queue(0);
  queue.close();
  const auto sub = queue.submit(sample_features());
  ASSERT_FALSE(sub.ok());
  EXPECT_EQ(sub.error().code, ErrorCode::kQueueClosed);
}

TEST(RequestQueueEdges, TrySubmitOnFullQueueIsRejectedOverload) {
  serve::RequestQueue queue(1);
  ASSERT_TRUE(queue.submit(sample_features()).ok());
  const auto sub = queue.try_submit(sample_features());
  ASSERT_FALSE(sub.ok());
  EXPECT_EQ(sub.error().code, ErrorCode::kRejectedOverload);
  EXPECT_EQ(queue.issued(), 1u);
}

TEST(RequestQueueEdges, TrySubmitOnClosedQueueIsQueueClosed) {
  serve::RequestQueue queue(4);
  queue.close();
  const auto sub = queue.try_submit(sample_features());
  ASSERT_FALSE(sub.ok());
  EXPECT_EQ(sub.error().code, ErrorCode::kQueueClosed);
}

TEST(RequestQueueEdges, TrySubmitOnZeroCapacityIsRejectedOverload) {
  serve::RequestQueue queue(0);
  const auto sub = queue.try_submit(sample_features());
  ASSERT_FALSE(sub.ok());
  EXPECT_EQ(sub.error().code, ErrorCode::kRejectedOverload);
}

TEST(RequestQueueEdges, CollectTakesHighestPriorityClassFirst) {
  serve::RequestQueue queue(8);
  ASSERT_TRUE(queue
                  .submit(sample_features(), 0.0,
                          serve::Priority::kSheddable)
                  .ok());  // id 0
  ASSERT_TRUE(queue
                  .submit(sample_features(), 0.0,
                          serve::Priority::kStandard)
                  .ok());  // id 1
  ASSERT_TRUE(queue
                  .submit(sample_features(), 0.0,
                          serve::Priority::kCritical)
                  .ok());  // id 2
  ASSERT_TRUE(queue
                  .submit(sample_features(), 0.0,
                          serve::Priority::kStandard)
                  .ok());  // id 3

  auto taken = queue.collect(3, 0.0);
  ASSERT_EQ(taken.size(), 3u);
  EXPECT_EQ(taken[0].id, 2u);  // critical first
  EXPECT_EQ(taken[1].id, 1u);  // then standard, FIFO within the class
  EXPECT_EQ(taken[2].id, 3u);

  taken = queue.collect(3, 0.0);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].id, 0u);  // the sheddable straggler survives intact
}

// --- EWMA cost model -------------------------------------------------

TEST(EwmaCostModel, FirstObservationSnapsThenSmooths) {
  serve::CostModelOptions opt;
  opt.alpha = 0.5;
  opt.initial_col_ms = 1.0;
  serve::EwmaCostModel model(opt);
  EXPECT_DOUBLE_EQ(model.col_ms(), 1.0);       // prior
  EXPECT_DOUBLE_EQ(model.estimate_ms(4), 4.0);

  model.observe(10, 20.0, 8.0);  // 2 ms/col: first observation snaps
  EXPECT_DOUBLE_EQ(model.col_ms(), 2.0);
  EXPECT_DOUBLE_EQ(model.residue_nnz(), 8.0);

  model.observe(10, 40.0, 0.0);  // 4 ms/col: EWMA moves halfway
  EXPECT_DOUBLE_EQ(model.col_ms(), 3.0);
  EXPECT_DOUBLE_EQ(model.residue_nnz(), 4.0);
  EXPECT_EQ(model.observations(), 2u);
}

TEST(EwmaCostModel, IgnoresEmptyAndNonPositiveBatches) {
  serve::EwmaCostModel model;
  model.observe(0, 10.0, 0.0);
  model.observe(4, 0.0, 0.0);
  model.observe(4, -1.0, 0.0);
  EXPECT_EQ(model.observations(), 0u);
}

TEST(EwmaCostModel, ResidueSurchargeRaisesEstimates) {
  serve::CostModelOptions opt;
  opt.residue_ms_per_nnz = 0.5;
  serve::EwmaCostModel model(opt);
  model.observe(4, 4.0, 10.0);  // 1 ms/col, residue 10
  EXPECT_DOUBLE_EQ(model.estimate_ms(4), 4.0 + 0.5 * 10.0);
}

// --- Brownout ladder -------------------------------------------------

TEST(BrownoutLadder, EscalatesAfterEnterRoundsAndRelaxesSlower) {
  serve::BrownoutOptions opt;
  opt.enter_pressure = 0.75;
  opt.exit_pressure = 0.35;
  opt.enter_rounds = 2;
  opt.exit_rounds = 3;
  serve::BrownoutLadder ladder(opt);

  EXPECT_EQ(ladder.observe(0.9), 0);   // 1 hot round: not yet
  EXPECT_EQ(ladder.observe(0.9), +1);  // 2nd: escalate
  EXPECT_EQ(ladder.level(), serve::BrownoutLevel::kTightTimeout);

  EXPECT_EQ(ladder.observe(0.1), 0);  // cooling takes exit_rounds
  EXPECT_EQ(ladder.observe(0.1), 0);
  EXPECT_EQ(ladder.observe(0.1), -1);
  EXPECT_EQ(ladder.level(), serve::BrownoutLevel::kNormal);
  EXPECT_EQ(ladder.observe(0.1), 0);  // already at the floor
}

TEST(BrownoutLadder, HysteresisBandDiscardsProgress) {
  serve::BrownoutOptions opt;
  opt.enter_rounds = 2;
  opt.exit_rounds = 2;
  serve::BrownoutLadder ladder(opt);
  EXPECT_EQ(ladder.observe(0.9), 0);
  EXPECT_EQ(ladder.observe(0.5), 0);   // band: hot progress discarded
  EXPECT_EQ(ladder.observe(0.9), 0);   // must start over
  EXPECT_EQ(ladder.observe(0.9), +1);
  EXPECT_EQ(ladder.observe(0.1), 0);
  EXPECT_EQ(ladder.observe(0.5), 0);   // band: cool progress discarded
  EXPECT_EQ(ladder.observe(0.1), 0);
  EXPECT_EQ(ladder.observe(0.1), -1);
}

TEST(BrownoutLadder, ClimbsTheFullLadderAndRespectsMaxLevel) {
  serve::BrownoutOptions opt;
  opt.enter_rounds = 1;
  opt.max_level = 2;
  serve::BrownoutLadder ladder(opt);
  EXPECT_EQ(ladder.observe(1.0), +1);
  EXPECT_EQ(ladder.observe(1.0), +1);
  EXPECT_EQ(ladder.observe(1.0), 0);  // capped at max_level
  EXPECT_EQ(ladder.level(), serve::BrownoutLevel::kFifoPack);
}

TEST(BrownoutLadder, ForceLevelPinsTheLadder) {
  serve::BrownoutOptions opt;
  opt.force_level = 3;
  serve::BrownoutLadder ladder(opt);
  EXPECT_EQ(ladder.level(), serve::BrownoutLevel::kEconomyTier);
  EXPECT_EQ(ladder.observe(0.0), 0);
  EXPECT_EQ(ladder.observe(1.0), 0);
  EXPECT_EQ(ladder.level(), serve::BrownoutLevel::kEconomyTier);
}

// --- AdmissionController ---------------------------------------------

TEST(AdmissionController, DepthCapRefusesWithRetryAfterHint) {
  serve::AdmissionOptions opt;
  opt.enabled = true;
  opt.max_queue_depth = 2;
  serve::AdmissionController controller(opt);

  EXPECT_TRUE(controller.admit("t", serve::Priority::kStandard, 0.0)
                  .admitted);
  EXPECT_TRUE(controller.admit("t", serve::Priority::kStandard, 0.1)
                  .admitted);
  const auto refused =
      controller.admit("t", serve::Priority::kStandard, 0.2);
  EXPECT_FALSE(refused.admitted);
  EXPECT_STREQ(refused.reason, "depth");
  EXPECT_GT(refused.retry_after_ms, 0.0);
  const auto error = refused.to_error("t");
  EXPECT_EQ(error.code, ErrorCode::kRejectedOverload);
  EXPECT_NE(error.message.find("retry after"), std::string::npos);
  EXPECT_NE(error.message.find("'t'"), std::string::npos);

  // Draining the backlog re-opens the intake.
  controller.on_collected("t", 2);
  EXPECT_TRUE(controller.admit("t", serve::Priority::kStandard, 0.3)
                  .admitted);
  EXPECT_EQ(controller.accepted(), 3u);
  EXPECT_EQ(controller.rejected(), 1u);
}

TEST(AdmissionController, SheddableHeadroomRefusesSheddableFirst) {
  serve::AdmissionOptions opt;
  opt.enabled = true;
  opt.max_queue_depth = 4;
  opt.sheddable_headroom = 0.5;  // sheddable cap = 2
  serve::AdmissionController controller(opt);

  EXPECT_TRUE(controller.admit("t", serve::Priority::kSheddable, 0.0)
                  .admitted);
  EXPECT_TRUE(controller.admit("t", serve::Priority::kSheddable, 0.1)
                  .admitted);
  EXPECT_FALSE(controller.admit("t", serve::Priority::kSheddable, 0.2)
                   .admitted);
  // Standard traffic still has room up to the full cap.
  EXPECT_TRUE(controller.admit("t", serve::Priority::kStandard, 0.3)
                  .admitted);
  EXPECT_TRUE(controller.admit("t", serve::Priority::kStandard, 0.4)
                  .admitted);
  EXPECT_FALSE(controller.admit("t", serve::Priority::kStandard, 0.5)
                   .admitted);
}

TEST(AdmissionController, PerTenantQuotaOverridesAndZeroCutsOff) {
  serve::AdmissionOptions opt;
  opt.enabled = true;
  opt.max_queue_depth = 8;
  opt.tenant_depth["bully"] = 0;
  opt.tenant_depth["vip"] = 1;
  serve::AdmissionController controller(opt);

  EXPECT_FALSE(controller.admit("bully", serve::Priority::kCritical, 0.0)
                   .admitted);
  EXPECT_TRUE(controller.admit("vip", serve::Priority::kStandard, 0.1)
                  .admitted);
  EXPECT_FALSE(controller.admit("vip", serve::Priority::kStandard, 0.2)
                   .admitted);
  EXPECT_TRUE(controller.admit("other", serve::Priority::kStandard, 0.3)
                  .admitted);  // default cap untouched
  EXPECT_EQ(controller.depth("bully"), 0u);
  EXPECT_EQ(controller.depth("vip"), 1u);
}

TEST(AdmissionController, WorkCapPricesBacklogThroughCostModel) {
  serve::AdmissionOptions opt;
  opt.enabled = true;
  opt.max_queue_depth = 100;
  opt.max_backlog_ms = 3.0;
  opt.cost.initial_col_ms = 1.0;  // 1 ms per queued request
  serve::AdmissionController controller(opt);

  EXPECT_TRUE(controller.admit("t", serve::Priority::kStandard, 0.0)
                  .admitted);
  EXPECT_TRUE(controller.admit("t", serve::Priority::kStandard, 0.1)
                  .admitted);
  EXPECT_TRUE(controller.admit("t", serve::Priority::kStandard, 0.2)
                  .admitted);
  const auto refused =
      controller.admit("t", serve::Priority::kStandard, 0.3);
  EXPECT_FALSE(refused.admitted);
  EXPECT_STREQ(refused.reason, "work");
  EXPECT_GT(refused.retry_after_ms, 0.0);
}

TEST(AdmissionController, FeasibilityPredictorTracksCostModel) {
  serve::AdmissionOptions opt;
  opt.enabled = true;
  opt.cost.initial_col_ms = 1.0;
  serve::AdmissionController controller(opt);
  EXPECT_TRUE(controller.infeasible(-1.0, 1));  // spent budgets never fit
  EXPECT_TRUE(controller.infeasible(3.0, 4));   // 4 ms estimated > 3 ms
  EXPECT_FALSE(controller.infeasible(5.0, 4));
  // A cheap observed batch relaxes the predictor.
  controller.on_round("t", 10, 1.0, 0.0, 1.0);  // 0.1 ms/col
  EXPECT_FALSE(controller.infeasible(3.0, 4));
}

TEST(AdmissionController, EffectiveTimeoutShrinksAtLevelOne) {
  serve::AdmissionOptions opt;
  opt.enabled = true;
  opt.brownout.force_level = 1;
  opt.brownout.timeout_shrink = 0.25;
  serve::AdmissionController controller(opt);
  EXPECT_DOUBLE_EQ(controller.effective_timeout_ms(8.0), 2.0);

  serve::AdmissionController normal{serve::AdmissionOptions{}};
  EXPECT_DOUBLE_EQ(normal.effective_timeout_ms(8.0), 8.0);
}

TEST(AdmissionController, DecisionLogSerializationIsStable) {
  serve::AdmissionOptions opt;
  opt.enabled = true;
  opt.max_queue_depth = 1;
  opt.record_decisions = true;
  serve::AdmissionController controller(opt);
  (void)controller.admit("a", serve::Priority::kStandard, 0.5);
  (void)controller.admit("a", serve::Priority::kSheddable, 1.0);
  controller.record_dispatch("a", 0, serve::Priority::kStandard, 0.0,
                             2.0);

  const auto log = controller.take_log();
  ASSERT_EQ(log.size(), 3u);
  const std::string text = log.to_text();
  EXPECT_NE(text.find("accept tenant=a req=0 pr=standard"),
            std::string::npos);
  EXPECT_NE(text.find("reject tenant=a req=1 pr=sheddable"),
            std::string::npos);
  EXPECT_NE(text.find("dispatch tenant=a req=0"), std::string::npos);
  // take_log drains: a second take sees an empty log.
  EXPECT_EQ(controller.take_log().size(), 0u);
}

// --- Scripted property grid ------------------------------------------

struct ReplayFixture {
  dnn::SparseDnn net;
  dnn::DenseMatrix samples;
  baselines::SerialEngine engine;

  ReplayFixture()
      : net([] {
          radixnet::RadixNetOptions opt;
          opt.neurons = 64;
          opt.layers = 4;
          opt.seed = 7;
          return radixnet::make_radixnet(opt);
        }()),
        samples([] {
          data::SdgcInputOptions opt;
          opt.neurons = 64;
          opt.batch = 32;
          opt.seed = 8;
          return data::make_sdgc_input(opt).features;
        }()) {
    net.ensure_csc();
  }

  serve::ReplayReport replay(const serve::LoadScript& script,
                             serve::ReplayOptions options) {
    options.run_engines = false;  // scheduling-only: the grid is large
    serve::LoadReplayer replayer(options);
    std::set<std::string> tenants;
    for (const auto& event : script.events) tenants.insert(event.tenant);
    for (const auto& id : tenants) {
      replayer.add_tenant(id, engine, net, samples);
    }
    return replayer.run(script);
  }
};

serve::LoadScript grid_script(const std::string& shape,
                              std::uint64_t seed) {
  serve::LoadScriptSpec spec;
  spec.shape = shape;
  spec.tenants = {"a", "b"};
  spec.requests_per_tenant = 48;
  spec.mean_gap_ms = 0.15;  // ~2x a 16-batch virtual server's capacity
  spec.deadline_ms = 8.0;
  spec.sheddable_fraction = 0.3;
  spec.critical_fraction = 0.2;
  spec.seed = seed;
  spec.samples = 32;
  return serve::make_load_script(spec);
}

serve::ReplayOptions grid_options() {
  serve::ReplayOptions opt;
  opt.max_batch = 8;
  opt.batch_timeout_ms = 1.0;
  opt.admission.enabled = true;
  opt.admission.max_queue_depth = 12;
  opt.admission.brownout.enter_rounds = 2;
  return opt;
}

TEST(AdmissionProperties, EveryRequestIsConservedAcrossShapesAndSeeds) {
  ReplayFixture fx;
  for (const std::string shape : {"poisson", "burst", "ramp", "storm"}) {
    for (const std::uint64_t seed : {11ULL, 42ULL, 97ULL}) {
      const auto report = fx.replay(grid_script(shape, seed),
                                    grid_options());
      SCOPED_TRACE(shape + " seed " + std::to_string(seed));
      // Terminal accounting: shed + completed + late + timed_out +
      // rejected + failed == submitted, per tenant and in aggregate, and
      // nothing is left pending once the replay drains.
      std::size_t total = 0;
      for (const auto& [id, t] : report.tenants) {
        EXPECT_EQ(t.rejected + t.shed + t.timed_out + t.completed +
                      t.late + t.failed,
                  t.submitted)
            << "tenant " << id;
        total += t.submitted;
      }
      EXPECT_EQ(total, report.submitted());
      EXPECT_EQ(report.requests.size(), std::size_t{2 * 48});
      for (const auto& request : report.requests) {
        EXPECT_NE(request.outcome, serve::ReplayOutcome::kPending)
            << "request " << request.index;
      }
    }
  }
}

TEST(AdmissionProperties, AcceptedWorkIsNeverStarvedByLowerPriority) {
  ReplayFixture fx;
  for (const std::string shape : {"poisson", "burst", "ramp", "storm"}) {
    const auto report = fx.replay(grid_script(shape, 42), grid_options());
    SCOPED_TRACE(shape);
    // For every formed batch: anything the lane left pending must not
    // outrank what rode the batch — the selection loop always takes the
    // highest priority class first.
    for (const auto& batch : report.batches) {
      int min_in = std::numeric_limits<int>::max();
      for (const std::size_t index : batch.request_indices) {
        min_in = std::min(
            min_in,
            static_cast<int>(report.requests[index].priority));
      }
      int max_out = std::numeric_limits<int>::min();
      for (const auto& request : report.requests) {
        if (request.tenant != batch.tenant) continue;
        if (request.outcome == serve::ReplayOutcome::kRejected) continue;
        const bool waiting =
            request.arrive_ms <= batch.start_ms &&
            (request.resolved_ms < 0.0 ||
             request.resolved_ms > batch.start_ms) &&
            !(request.dispatch_ms >= 0.0 &&
              request.dispatch_ms <= batch.start_ms);
        if (waiting) {
          max_out = std::max(max_out,
                             static_cast<int>(request.priority));
        }
      }
      if (max_out > std::numeric_limits<int>::min()) {
        EXPECT_LE(max_out, min_in) << "batch " << batch.batch;
      }
    }
  }
}

TEST(AdmissionProperties, ReplayingTheSameScriptTwiceIsBitIdentical) {
  ReplayFixture fx;
  for (const std::string shape : {"poisson", "burst", "ramp", "storm"}) {
    const auto script = grid_script(shape, 42);
    const auto first = fx.replay(script, grid_options());
    const auto second = fx.replay(script, grid_options());
    SCOPED_TRACE(shape);
    EXPECT_EQ(first.decision_digest(), second.decision_digest());
    EXPECT_EQ(first.log.to_text(), second.log.to_text());
    EXPECT_EQ(first.makespan_ms, second.makespan_ms);
    EXPECT_EQ(first.submitted(), second.submitted());
    EXPECT_EQ(first.completed(), second.completed());
    EXPECT_EQ(first.shed(), second.shed());
    EXPECT_EQ(first.rejected(), second.rejected());
    ASSERT_EQ(first.requests.size(), second.requests.size());
    for (std::size_t i = 0; i < first.requests.size(); ++i) {
      EXPECT_EQ(first.requests[i].outcome, second.requests[i].outcome);
      EXPECT_EQ(first.requests[i].latency_ms,
                second.requests[i].latency_ms);
    }
  }
}

// --- Live stack drills (wall clock, outcome-asserted only) -----------

struct LiveFixture {
  dnn::SparseDnn net;
  dnn::DenseMatrix input;
  baselines::SerialEngine engine;

  LiveFixture()
      : net([] {
          radixnet::RadixNetOptions opt;
          opt.neurons = 64;
          opt.layers = 4;
          opt.seed = 3;
          return radixnet::make_radixnet(opt);
        }()),
        input([] {
          data::SdgcInputOptions opt;
          opt.neurons = 64;
          opt.batch = 16;
          opt.seed = 4;
          return data::make_sdgc_input(opt).features;
        }()) {
    net.ensure_csc();
  }

  std::vector<float> features(std::size_t j) const {
    return std::vector<float>(input.col(j % input.cols()),
                              input.col(j % input.cols()) + input.rows());
  }
};

TEST(LiveAdmission, RefusedSubmitsFastFailTyped) {
  LiveFixture fx;
  serve::ServeOptions opt;
  opt.max_batch = 4;
  opt.admission.enabled = true;
  opt.admission.max_queue_depth = 3;
  serve::DynamicBatcher batcher(fx.engine, fx.net, opt,
                                serve::ManualDrive{});

  std::size_t accepted = 0, rejected = 0;
  for (std::size_t j = 0; j < 8; ++j) {
    const auto sub = batcher.submit(fx.features(j));
    if (sub.ok()) {
      ++accepted;
    } else {
      ASSERT_EQ(sub.error().code, ErrorCode::kRejectedOverload);
      EXPECT_NE(sub.error().message.find("retry after"),
                std::string::npos);
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, 3u);  // nobody is driving: depth cap binds exactly
  EXPECT_EQ(rejected, 5u);
  ASSERT_NE(batcher.controller(), nullptr);
  EXPECT_EQ(batcher.controller()->rejected(), 5u);

  while (batcher.drive(0.0)) {
  }
  const auto report = batcher.finish();
  EXPECT_EQ(report.requests, accepted);
  EXPECT_TRUE(report.complete());
  for (const auto& result : report.results) EXPECT_TRUE(result.ok());
}

TEST(LiveAdmission, InfeasibleSheddablesAreShedAtDispatch) {
  LiveFixture fx;
  serve::ServeOptions opt;
  opt.max_batch = 4;
  opt.admission.enabled = true;
  opt.admission.max_queue_depth = 16;
  // An absurd cost prior makes every budgeted request look infeasible.
  opt.admission.cost.initial_col_ms = 1e6;
  serve::DynamicBatcher batcher(fx.engine, fx.net, opt,
                                serve::ManualDrive{});

  for (std::size_t j = 0; j < 4; ++j) {
    ASSERT_TRUE(batcher
                    .submit(fx.features(j), /*deadline_ms=*/5000.0,
                            serve::Priority::kSheddable)
                    .ok());
  }
  // Standard traffic is never shed by the predictor, whatever the cost.
  ASSERT_TRUE(batcher
                  .submit(fx.features(4), /*deadline_ms=*/5000.0,
                          serve::Priority::kStandard)
                  .ok());
  while (batcher.drive(0.0)) {
  }
  const auto report = batcher.finish();
  EXPECT_EQ(report.shed_requests, 4u);
  EXPECT_FALSE(report.complete());
  std::size_t ok = 0, shed = 0;
  for (const auto& result : report.results) {
    if (result.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(result.code, ErrorCode::kRejectedOverload);
      ++shed;
    }
  }
  EXPECT_EQ(ok, 1u);
  EXPECT_EQ(shed, 4u);
  EXPECT_EQ(batcher.controller()->shed(), 4u);
}

}  // namespace
