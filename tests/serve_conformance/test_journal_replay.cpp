// Kill–replay conformance: the crash-recovery property the journal
// subsystem exists to guarantee. A journaled run halted after k batches
// (the simulated SIGKILL) plus a script-anchored replay of its journal
// must reproduce the uninterrupted oracle's decision log and served
// outputs bit-identically — across shapes, seeds, and kill points, for
// the reference engine and for SNICIT (whose outputs depend on batch
// composition, which is exactly why replay re-runs the full script).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "platform/error.hpp"
#include "radixnet/radixnet.hpp"
#include "serve/journal.hpp"
#include "serve/load_replay.hpp"
#include "serve/load_script.hpp"
#include "snicit/engine.hpp"

namespace {

using namespace snicit;
using platform::ErrorCode;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "snicit_killreplay_" + name;
}

// Shared serving substrate: one small net and sample pool per process.
struct Substrate {
  dnn::SparseDnn net;
  dnn::DenseMatrix pool;

  Substrate() {
    radixnet::RadixNetOptions opt;
    opt.neurons = 64;
    opt.layers = 8;
    opt.seed = 11;
    net = radixnet::make_radixnet(opt);
    net.ensure_csc();  // SNICIT engines need the CSC mirror
    data::SdgcInputOptions in;
    in.neurons = 64;
    in.batch = 32;
    in.seed = 3;
    pool = data::make_sdgc_input(in).features;
  }
};

const Substrate& substrate() {
  static const Substrate s;
  return s;
}

serve::LoadScript make_script(const std::string& shape,
                              std::uint64_t seed) {
  serve::LoadScriptSpec spec;
  spec.shape = shape;
  spec.tenants = {""};
  spec.requests_per_tenant = 24;
  // Arrivals outpace the virtual service rate so a backlog builds: kills
  // between rounds then leave admitted-but-unanswered requests behind
  // (the resubmitted set the replay exists to serve).
  spec.mean_gap_ms = 0.15;
  spec.deadline_ms = 6.0;  // some requests time out: replay must agree
  spec.sheddable_fraction = 0.25;
  spec.seed = seed;
  spec.samples = substrate().pool.cols();
  return serve::make_load_script(spec);
}

serve::ReplayOptions base_options() {
  serve::ReplayOptions opt;
  opt.max_batch = 8;
  opt.batch_timeout_ms = 1.5;
  opt.packer = "similarity";
  return opt;
}

core::SnicitParams snicit_params() {
  core::SnicitParams params;
  params.threshold_layer = 4;
  params.sample_size = 8;
  params.downsample_dim = 8;
  return params;
}

std::unique_ptr<dnn::InferenceEngine> make_engine(
    const std::string& kind) {
  if (kind == "snicit") {
    return std::make_unique<core::SnicitEngine>(snicit_params());
  }
  return std::make_unique<dnn::ReferenceEngine>();
}

serve::ReplayReport oracle_run(const serve::LoadScript& script,
                               const std::string& engine_kind) {
  auto engine = make_engine(engine_kind);
  serve::LoadReplayer replayer(base_options());
  replayer.add_tenant("", *engine, substrate().net, substrate().pool);
  return replayer.run(script);
}

// Runs the victim (journaled, halted after `kill` batches), then replays
// its journal against the script and checks bit-identity to `oracle`.
// Accumulates how many requests the replay resubmitted into
// `total_resubmitted`, so callers can assert the sweep actually
// exercised crash recovery (a single kill point where the batcher had
// just drained its queue legitimately resubmits zero).
void check_kill_point(const serve::LoadScript& script,
                      const serve::ReplayReport& oracle,
                      const std::string& engine_kind, std::size_t kill,
                      const std::string& tag,
                      std::size_t& total_resubmitted) {
  SCOPED_TRACE(tag);
  const std::string path = temp_path(tag + ".journal");

  auto victim_engine = make_engine(engine_kind);
  auto writer = serve::JournalWriter::open(path);
  ASSERT_TRUE(writer.ok()) << writer.error().message;
  auto opts = base_options();
  opts.journal = writer.value().get();
  opts.halt_after_batches = kill;
  serve::LoadReplayer victim(opts);
  victim.add_tenant("", *victim_engine, substrate().net,
                    substrate().pool);
  const auto crashed = victim.run(script);
  EXPECT_EQ(crashed.journal_errors, 0u);
  // No close(): the destructor drops the fd without fsync, like a kill.
  writer.value().reset();

  const auto contents = serve::read_journal(path);
  ASSERT_TRUE(contents.ok()) << contents.error().message;
  std::size_t journaled_ok = 0;
  for (const auto& complete : contents.value().completes) {
    if (complete.code == ErrorCode::kOk) ++journaled_ok;
  }

  auto replay_engine = make_engine(engine_kind);
  std::map<std::string, serve::JournalTenant> tenants;
  tenants[""] = serve::JournalTenant{replay_engine.get(),
                                     &substrate().net, &substrate().pool};
  const auto replayed = serve::replay_journal(contents.value(), &script,
                                              tenants, base_options());
  ASSERT_TRUE(replayed.ok()) << replayed.error().message;

  // The property: bit-identical to the uninterrupted run.
  EXPECT_EQ(replayed.value().decision_digest(), oracle.decision_digest());
  EXPECT_EQ(replayed.value().output_digest(), oracle.output_digest());
  EXPECT_EQ(replayed.value().digest_mismatches, 0u);

  // Suppressed/resubmitted partition the journaled admits exactly.
  EXPECT_EQ(replayed.value().suppressed.size(),
            contents.value().completes.size());
  EXPECT_EQ(replayed.value().suppressed.size() +
                replayed.value().resubmitted.size(),
            contents.value().admits.size());
  std::set<std::uint64_t> overlap(replayed.value().suppressed.begin(),
                                  replayed.value().suppressed.end());
  for (const auto id : replayed.value().resubmitted) {
    EXPECT_EQ(overlap.count(id), 0u) << "request " << id
                                     << " both suppressed and resubmitted";
  }

  total_resubmitted += replayed.value().resubmitted.size();
  (void)journaled_ok;
}

// 2 shapes x 2 seeds x 5 kill points = 20 reference-engine kill points.
TEST(KillReplay, ReferenceEngineIsBitIdenticalAcrossKillPoints) {
  std::size_t total_resubmitted = 0;
  for (const std::string shape : {"poisson", "burst"}) {
    for (const std::uint64_t seed : {1ull, 7ull}) {
      const auto script = make_script(shape, seed);
      const auto oracle = oracle_run(script, "reference");
      // Some kill points land mid-run; later ones land after the last
      // batch and degrade to clean-run replays — both are valid crash
      // shapes and the digest property must hold for each.
      EXPECT_GT(oracle.batches.size(), 2u);
      for (const std::size_t kill : {1u, 2u, 3u, 4u, 5u}) {
        check_kill_point(script, oracle, "reference", kill,
                         "ref_" + shape + "_s" + std::to_string(seed) +
                             "_k" + std::to_string(kill),
                         total_resubmitted);
      }
    }
  }
  // The sweep as a whole must hit real crash artifacts: kills that left
  // admitted requests unanswered and forced replay to serve them.
  EXPECT_GT(total_resubmitted, 0u);
}

// SNICIT's centroid capture depends on batch composition — the engine
// for which suffix-only re-batching could NOT be bit-identical, and the
// reason replay is script-anchored.
TEST(KillReplay, SnicitEngineIsBitIdenticalAcrossKillPoints) {
  std::size_t total_resubmitted = 0;
  const auto script = make_script("poisson", 5);
  const auto oracle = oracle_run(script, "snicit");
  EXPECT_GT(oracle.batches.size(), 3u);
  for (const std::size_t kill : {1u, 2u, 3u}) {
    check_kill_point(script, oracle, "snicit", kill,
                     "snicit_poisson_k" + std::to_string(kill),
                     total_resubmitted);
  }
  EXPECT_GT(total_resubmitted, 0u);
}

TEST(KillReplay, CleanRunReplaySuppressesEverything) {
  const auto script = make_script("poisson", 9);
  const std::string path = temp_path("clean.journal");
  auto engine = make_engine("reference");
  auto writer = serve::JournalWriter::open(path);
  ASSERT_TRUE(writer.ok());
  auto opts = base_options();
  opts.journal = writer.value().get();
  serve::LoadReplayer live(opts);
  live.add_tenant("", *engine, substrate().net, substrate().pool);
  const auto report = live.run(script);
  EXPECT_FALSE(report.halted);
  writer.value()->close();

  const auto contents = serve::read_journal(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_FALSE(contents.value().truncated_tail);

  auto replay_engine = make_engine("reference");
  std::map<std::string, serve::JournalTenant> tenants;
  tenants[""] = serve::JournalTenant{replay_engine.get(),
                                     &substrate().net, &substrate().pool};
  const auto replayed = serve::replay_journal(contents.value(), &script,
                                              tenants, base_options());
  ASSERT_TRUE(replayed.ok()) << replayed.error().message;
  EXPECT_TRUE(replayed.value().resubmitted.empty());
  EXPECT_EQ(replayed.value().suppressed.size(), script.events.size());
  EXPECT_EQ(replayed.value().digest_mismatches, 0u);
  EXPECT_EQ(replayed.value().output_digest(), report.output_digest());
}

// Journal-only mode: no script, no sample pool — the journal's own
// feature columns rebuild the input. Guaranteed digest-clean for
// column-independent engines like the reference.
TEST(KillReplay, JournalOnlyModeReconstructsTheRunFromFeatures) {
  const auto script = make_script("poisson", 13);
  const std::string path = temp_path("journal_only.journal");
  auto engine = make_engine("reference");
  auto writer = serve::JournalWriter::open(path);
  ASSERT_TRUE(writer.ok());
  auto opts = base_options();
  opts.journal = writer.value().get();
  opts.journal_features = true;
  opts.halt_after_batches = 2;
  serve::LoadReplayer victim(opts);
  victim.add_tenant("", *engine, substrate().net, substrate().pool);
  const auto crashed = victim.run(script);
  EXPECT_TRUE(crashed.halted);
  writer.value().reset();

  const auto contents = serve::read_journal(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_FALSE(contents.value().admits.empty());
  EXPECT_FALSE(contents.value().admits.front().features.empty());

  auto replay_engine = make_engine("reference");
  std::map<std::string, serve::JournalTenant> tenants;
  tenants[""] = serve::JournalTenant{replay_engine.get(),
                                     &substrate().net, nullptr};
  const auto replayed = serve::replay_journal(
      contents.value(), nullptr, tenants, base_options());
  ASSERT_TRUE(replayed.ok()) << replayed.error().message;
  EXPECT_EQ(replayed.value().digest_mismatches, 0u);
  EXPECT_FALSE(replayed.value().resubmitted.empty());
  for (const auto id : replayed.value().resubmitted) {
    EXPECT_TRUE(replayed.value().report.requests[id].outcome !=
                serve::ReplayOutcome::kPending);
  }
}

TEST(KillReplay, JournalFromADifferentScriptIsTyped) {
  const auto script = make_script("poisson", 21);
  const std::string path = temp_path("wrong_script.journal");
  auto engine = make_engine("reference");
  auto writer = serve::JournalWriter::open(path);
  ASSERT_TRUE(writer.ok());
  auto opts = base_options();
  opts.journal = writer.value().get();
  opts.halt_after_batches = 2;
  serve::LoadReplayer victim(opts);
  victim.add_tenant("", *engine, substrate().net, substrate().pool);
  (void)victim.run(script);
  writer.value().reset();

  const auto contents = serve::read_journal(path);
  ASSERT_TRUE(contents.ok());

  // Replaying against a *different* script must be refused, not quietly
  // produce wrong answers.
  const auto other = make_script("poisson", 22);
  auto replay_engine = make_engine("reference");
  std::map<std::string, serve::JournalTenant> tenants;
  tenants[""] = serve::JournalTenant{replay_engine.get(),
                                     &substrate().net, &substrate().pool};
  const auto replayed = serve::replay_journal(contents.value(), &other,
                                              tenants, base_options());
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.error().code, ErrorCode::kBadInput);
}

}  // namespace
