// Brownout conformance: the ladder degrades *scheduling* (fill timeout,
// packer, engine tier) and never the math — accepted outputs stay
// bit-identical to serial stream_inference at every level. Golden output
// digests are compared across force-pinned levels, SNICIT batches are
// replayed serially batch by batch, and the pressure-driven transitions
// (escalate under a burst, relax with hysteresis as the backlog drains)
// are asserted on the virtual clock.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/serial.hpp"
#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "radixnet/radixnet.hpp"
#include "serve/load_replay.hpp"
#include "serve/load_script.hpp"
#include "snicit/engine.hpp"
#include "snicit/stream.hpp"

namespace {

using namespace snicit;

struct Workload {
  dnn::SparseDnn net;
  dnn::DenseMatrix samples;

  explicit Workload(std::uint64_t seed = 5)
      : net([&] {
          radixnet::RadixNetOptions opt;
          opt.neurons = 64;
          opt.layers = 6;
          opt.seed = seed;
          return radixnet::make_radixnet(opt);
        }()),
        samples([&] {
          data::SdgcInputOptions opt;
          opt.neurons = 64;
          opt.batch = 24;
          opt.seed = seed + 1;
          return data::make_sdgc_input(opt).features;
        }()) {
    net.ensure_csc();
  }
};

serve::LoadScript brownout_script(std::size_t requests = 40) {
  serve::LoadScriptSpec spec;
  spec.shape = "poisson";
  spec.tenants = {"t"};
  spec.requests_per_tenant = requests;
  spec.mean_gap_ms = 0.4;
  spec.deadline_ms = 0.0;  // no budgets: every accepted request serves
  spec.seed = 17;
  spec.samples = 24;
  return serve::make_load_script(spec);
}

serve::ReplayOptions level_options(int level) {
  serve::ReplayOptions opt;
  opt.max_batch = 8;
  opt.batch_timeout_ms = 2.0;
  opt.admission.enabled = true;
  opt.admission.max_queue_depth = 256;  // accept everything
  opt.admission.brownout.force_level = level;
  return opt;
}

bool bit_identical(const std::vector<float>& a, const float* b,
                   std::size_t n) {
  return a.size() == n &&
         std::memcmp(a.data(), b, n * sizeof(float)) == 0;
}

// --- Golden digests across the ladder --------------------------------

TEST(BrownoutGolden, OutputsBitIdenticalToSerialOracleAtEveryLevel) {
  Workload wl;
  // The reference engine treats columns independently, so each request's
  // output must equal the serial one-pass oracle's column whatever batch
  // (or brownout level) it rode.
  dnn::ReferenceEngine oracle_engine;
  const auto oracle =
      core::stream_inference(oracle_engine, wl.net, wl.samples, {});

  const auto script = brownout_script();
  std::vector<std::uint64_t> digests;
  for (int level = 0; level <= 3; ++level) {
    dnn::ReferenceEngine engine;
    dnn::ReferenceEngine economy;  // mathematically identical tier
    serve::LoadReplayer replayer(level_options(level));
    replayer.add_tenant("t", engine, wl.net, wl.samples);
    replayer.set_economy("t", economy);
    const auto report = replayer.run(script);

    SCOPED_TRACE("level " + std::to_string(level));
    ASSERT_FALSE(report.batches.empty());
    for (const auto& batch : report.batches) {
      EXPECT_EQ(static_cast<int>(batch.level), level);
      EXPECT_EQ(batch.economy, level >= 3);
    }
    for (const auto& request : report.requests) {
      ASSERT_TRUE(request.served()) << "request " << request.index;
      const std::size_t column = request.sample % wl.samples.cols();
      EXPECT_TRUE(bit_identical(request.output,
                                oracle.outputs.col(column),
                                oracle.outputs.rows()))
          << "request " << request.index << " at level " << level;
    }
    digests.push_back(report.output_digest());
  }
  // Scheduling degradation reorders and re-times batches; it must never
  // change a single served bit.
  for (std::size_t i = 1; i < digests.size(); ++i) {
    EXPECT_EQ(digests[i], digests[0]) << "level " << i;
  }
}

TEST(BrownoutGolden, SnicitBatchesReplaySeriallyBitExactAtEveryLevel) {
  Workload wl;
  core::SnicitParams params;
  params.threshold_layer = 3;
  params.sample_size = 8;
  params.downsample_dim = 8;

  const auto script = brownout_script(/*requests=*/32);
  for (int level = 0; level <= 3; ++level) {
    core::SnicitEngine engine(params);
    core::SnicitEngine economy(params);  // same tuning: identical math
    serve::LoadReplayer replayer(level_options(level));
    replayer.add_tenant("t", engine, wl.net, wl.samples);
    replayer.set_economy("t", economy);
    const auto report = replayer.run(script);

    SCOPED_TRACE("level " + std::to_string(level));
    // SNICIT couples columns through its conversion centroid, so the
    // contract is per *formed* batch: replaying exactly that batch
    // serially through stream_inference must reproduce the served
    // outputs bit for bit.
    for (const auto& batch : report.batches) {
      dnn::DenseMatrix input(wl.samples.rows(),
                             batch.request_indices.size());
      for (std::size_t j = 0; j < batch.request_indices.size(); ++j) {
        const auto& request = report.requests[batch.request_indices[j]];
        const std::size_t column = request.sample % wl.samples.cols();
        std::copy_n(wl.samples.col(column), wl.samples.rows(),
                    input.col(j));
      }
      core::SnicitEngine replay_engine(params);
      core::StreamOptions sopt;
      sopt.batch_size = batch.request_indices.size();
      const auto serial =
          core::stream_inference(replay_engine, wl.net, input, sopt);
      for (std::size_t j = 0; j < batch.request_indices.size(); ++j) {
        const auto& request = report.requests[batch.request_indices[j]];
        ASSERT_TRUE(request.served());
        EXPECT_TRUE(bit_identical(request.output, serial.outputs.col(j),
                                  serial.outputs.rows()))
            << "request " << request.index << " in batch " << batch.batch;
      }
    }
  }
}

// --- Pressure-driven transitions -------------------------------------

TEST(BrownoutReplay, BurstEscalatesTheLadderAndDrainRelaxesIt) {
  Workload wl;
  baselines::SerialEngine engine;

  serve::LoadScriptSpec spec;
  spec.shape = "burst";  // everything lands at t=0: max pressure
  spec.tenants = {"t"};
  spec.requests_per_tenant = 64;
  spec.seed = 9;
  spec.samples = 24;
  const auto script = serve::make_load_script(spec);

  serve::ReplayOptions opt;
  opt.max_batch = 8;
  opt.admission.enabled = true;
  opt.admission.max_queue_depth = 64;  // pressure = backlog / 64
  opt.admission.brownout.enter_pressure = 0.75;
  opt.admission.brownout.exit_pressure = 0.35;
  opt.admission.brownout.enter_rounds = 2;
  opt.admission.brownout.exit_rounds = 2;
  opt.run_engines = false;
  serve::LoadReplayer replayer(opt);
  replayer.add_tenant("t", engine, wl.net, wl.samples);
  const auto report = replayer.run(script);

  // The burst drives pressure to 1.0; draining 8 columns a round walks
  // it back down through the hysteresis band to a de-escalation.
  EXPECT_GE(report.brownout_ups, 1u);
  EXPECT_GE(report.brownout_downs, 1u);
  EXPECT_GE(report.max_brownout_level, 1);
  const std::string log = report.log.to_text();
  EXPECT_NE(log.find("brownout_up"), std::string::npos);
  EXPECT_NE(log.find("brownout_down"), std::string::npos);
  // No request was harmed by the ladder: everything accepted completes.
  EXPECT_EQ(report.completed() + report.rejected(), report.submitted());
}

TEST(BrownoutReplay, TightTimeoutLevelShrinksTheFillWindow) {
  Workload wl;
  baselines::SerialEngine engine;
  const auto script = [&] {
    serve::LoadScriptSpec spec;
    spec.shape = "poisson";
    spec.tenants = {"t"};
    spec.requests_per_tenant = 12;
    spec.mean_gap_ms = 3.0;  // slower than any fill window: timeouts bind
    spec.seed = 21;
    spec.samples = 24;
    return serve::make_load_script(spec);
  }();

  const auto run_level = [&](int level) {
    serve::ReplayOptions opt = level_options(level);
    opt.batch_timeout_ms = 8.0;
    opt.admission.brownout.timeout_shrink = 0.25;
    opt.run_engines = false;
    serve::LoadReplayer replayer(opt);
    replayer.add_tenant("t", engine, wl.net, wl.samples);
    return replayer.run(script);
  };

  const auto normal = run_level(0);
  const auto tight = run_level(1);
  // A shrunk fill window dispatches sooner: no batch waits the full
  // window, so rounds start earlier and form at least as many batches.
  ASSERT_FALSE(normal.batches.empty());
  ASSERT_FALSE(tight.batches.empty());
  EXPECT_LT(tight.batches.front().start_ms,
            normal.batches.front().start_ms);
  EXPECT_GE(tight.batches.size(), normal.batches.size());
}

TEST(BrownoutReplay, TenRepetitionsAreBitIdentical) {
  Workload wl;
  core::SnicitParams params;
  params.threshold_layer = 3;
  params.sample_size = 8;
  params.downsample_dim = 8;

  const auto script = brownout_script(/*requests=*/24);
  serve::ReplayOptions opt = level_options(-1);  // free-running ladder
  std::uint64_t decision_digest = 0;
  std::uint64_t output_digest = 0;
  for (int rep = 0; rep < 10; ++rep) {
    core::SnicitEngine engine(params);
    serve::LoadReplayer replayer(opt);
    replayer.add_tenant("t", engine, wl.net, wl.samples);
    const auto report = replayer.run(script);
    if (rep == 0) {
      decision_digest = report.decision_digest();
      output_digest = report.output_digest();
      EXPECT_NE(decision_digest, 0u);
    } else {
      EXPECT_EQ(report.decision_digest(), decision_digest)
          << "repetition " << rep;
      EXPECT_EQ(report.output_digest(), output_digest)
          << "repetition " << rep;
    }
  }
}

}  // namespace
