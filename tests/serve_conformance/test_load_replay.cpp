// Load-script and load-replay conformance: seeded generators are
// bit-deterministic across all four canonical shapes, the text form
// round-trips with typed parse errors, the recorder stamps a replayable
// script, and the virtual-clock replayer reproduces serial
// stream_inference outputs while admission control defends goodput under
// scripted overload.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/serial.hpp"
#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "platform/error.hpp"
#include "radixnet/radixnet.hpp"
#include "serve/load_replay.hpp"
#include "serve/load_script.hpp"
#include "serve/virtual_clock.hpp"
#include "snicit/stream.hpp"

namespace {

using namespace snicit;
using platform::ErrorCode;

// --- Virtual clock ---------------------------------------------------

TEST(VirtualClock, AdvancesMonotonically) {
  serve::VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now_ms(), 0.0);
  clock.advance_to(1.5);
  clock.advance_to(1.5);  // standing still is allowed
  clock.advance_to(4.0);
  EXPECT_DOUBLE_EQ(clock.now_ms(), 4.0);
}

// --- Script generators -----------------------------------------------

serve::LoadScriptSpec base_spec(const std::string& shape,
                                std::uint64_t seed = 42) {
  serve::LoadScriptSpec spec;
  spec.shape = shape;
  spec.tenants = {"a", "b"};
  spec.requests_per_tenant = 24;
  spec.mean_gap_ms = 0.5;
  spec.deadline_ms = 5.0;
  spec.sheddable_fraction = 0.25;
  spec.critical_fraction = 0.25;
  spec.seed = seed;
  spec.samples = 16;
  return spec;
}

TEST(LoadScript, GeneratorsAreDeterministicPerShape) {
  for (const std::string shape : {"poisson", "burst", "ramp", "storm"}) {
    SCOPED_TRACE(shape);
    const auto spec = base_spec(shape);
    const auto first = serve::make_load_script(spec);
    const auto second = serve::make_load_script(spec);
    EXPECT_EQ(first.events, second.events);
    EXPECT_EQ(first.digest(), second.digest());
    EXPECT_EQ(first.name, shape);
    EXPECT_EQ(first.events.size(), std::size_t{2 * 24});

    // A different seed is a different script.
    auto reseeded = base_spec(shape, 43);
    EXPECT_NE(serve::make_load_script(reseeded).digest(), first.digest());

    // Events are sorted and samples stay inside the pool.
    for (std::size_t i = 1; i < first.events.size(); ++i) {
      EXPECT_LE(first.events[i - 1].at_ms, first.events[i].at_ms);
    }
    for (const auto& event : first.events) {
      EXPECT_LT(event.sample, spec.samples);
      EXPECT_GE(event.at_ms, 0.0);
    }
  }
}

TEST(LoadScript, TenantStreamsAreIndependent) {
  // Adding a tenant must not perturb another tenant's arrivals (each
  // tenant draws from its own seeded stream) — the foundation of the
  // flood-isolation oracle.
  auto solo_spec = base_spec("poisson");
  solo_spec.tenants = {"a"};
  const auto solo = serve::make_load_script(solo_spec);
  const auto both = serve::make_load_script(base_spec("poisson"));

  std::vector<serve::LoadEvent> filtered;
  for (const auto& event : both.events) {
    if (event.tenant == "a") filtered.push_back(event);
  }
  ASSERT_EQ(filtered.size(), solo.events.size());
  for (std::size_t i = 0; i < filtered.size(); ++i) {
    EXPECT_EQ(filtered[i], solo.events[i]) << "event " << i;
  }
}

TEST(LoadScript, BurstDumpsTheFirstTenantAtOneInstant) {
  auto spec = base_spec("burst");
  spec.burst_at_ms = 2.0;
  const auto script = serve::make_load_script(spec);
  std::size_t bursted = 0;
  for (const auto& event : script.events) {
    if (event.tenant == "a") {
      EXPECT_DOUBLE_EQ(event.at_ms, 2.0);
      ++bursted;
    }
  }
  EXPECT_EQ(bursted, spec.requests_per_tenant);
}

TEST(LoadScript, StormSharesOneAbsoluteDeadline) {
  auto spec = base_spec("storm");
  spec.storm_window_ms = 1.0;
  spec.deadline_ms = 6.0;
  const auto script = serve::make_load_script(spec);
  ASSERT_FALSE(script.events.empty());
  // Every arrival lands inside the window and carries the *same*
  // absolute deadline expressed as a per-event budget — the adversarial
  // case for the feasibility predictor (everyone's slack expires at
  // once).
  const double absolute =
      script.events.front().at_ms + script.events.front().deadline_ms;
  for (const auto& event : script.events) {
    EXPECT_LE(event.at_ms, spec.storm_window_ms);
    EXPECT_GT(event.deadline_ms, 0.0);
    EXPECT_NEAR(event.at_ms + event.deadline_ms, absolute, 1e-9);
  }
}

TEST(LoadScript, RampShrinksTheGap) {
  auto spec = base_spec("ramp");
  spec.tenants = {"a"};
  spec.requests_per_tenant = 64;
  const auto script = serve::make_load_script(spec);
  // The mean gap of the last quarter must be well below the first
  // quarter's — the script walks into overload.
  const std::size_t quarter = script.events.size() / 4;
  double early = 0.0, late = 0.0;
  for (std::size_t i = 1; i <= quarter; ++i) {
    early += script.events[i].at_ms - script.events[i - 1].at_ms;
  }
  for (std::size_t i = script.events.size() - quarter;
       i < script.events.size(); ++i) {
    late += script.events[i].at_ms - script.events[i - 1].at_ms;
  }
  EXPECT_LT(late, early * 0.75);
}

// --- Text round-trip -------------------------------------------------

TEST(LoadScript, TextRoundTripIsExactForRepresentableTimes) {
  serve::LoadScript script;
  script.name = "fixture";
  script.seed = 7;
  script.events = {
      {0.25, "a", 3, serve::Priority::kSheddable, 1.5},
      {0.5, "", 0, serve::Priority::kStandard, 0.0},
      {1.75, "b", 11, serve::Priority::kCritical, 8.0},
  };
  const auto parsed = serve::LoadScript::from_text(script.to_text());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().name, script.name);
  EXPECT_EQ(parsed.value().seed, script.seed);
  EXPECT_EQ(parsed.value().events, script.events);
  EXPECT_EQ(parsed.value().digest(), script.digest());
}

TEST(LoadScript, TextRoundTripIsIdempotentForGeneratedScripts) {
  // Generated times carry more precision than the %.9f text form keeps,
  // so one serialization may round — but text -> script -> text must be
  // a fixed point (checked-in fixtures stay stable forever).
  for (const std::string shape : {"poisson", "ramp", "storm"}) {
    const auto script = serve::make_load_script(base_spec(shape));
    const std::string text = script.to_text();
    const auto parsed = serve::LoadScript::from_text(text);
    ASSERT_TRUE(parsed.ok()) << shape;
    EXPECT_EQ(parsed.value().to_text(), text) << shape;
  }
}

TEST(LoadScript, FromTextRejectsMalformedInputTyped) {
  const auto bad_header = serve::LoadScript::from_text("not a script\n");
  ASSERT_FALSE(bad_header.ok());
  EXPECT_EQ(bad_header.error().code, ErrorCode::kBadInput);

  const auto bad_event = serve::LoadScript::from_text(
      "loadscript v1 name=x seed=1 events=1\n"
      "at=banana tenant=a sample=0 priority=standard deadline=0\n");
  ASSERT_FALSE(bad_event.ok());
  EXPECT_EQ(bad_event.error().code, ErrorCode::kBadInput);

  const auto bad_priority = serve::LoadScript::from_text(
      "loadscript v1 name=x seed=1 events=1\n"
      "at=0.5 tenant=a sample=0 priority=vip deadline=0\n");
  ASSERT_FALSE(bad_priority.ok());
  EXPECT_EQ(bad_priority.error().code, ErrorCode::kBadInput);

  const auto short_script = serve::LoadScript::from_text(
      "loadscript v1 name=x seed=1 events=2\n"
      "at=0.5 tenant=a sample=0 priority=standard deadline=0\n");
  ASSERT_FALSE(short_script.ok());
  EXPECT_EQ(short_script.error().code, ErrorCode::kBadInput);
}

TEST(LoadScriptRecorder, StampsASortedReplayableScript) {
  serve::LoadScriptRecorder recorder;
  recorder.record("a", 0, serve::Priority::kStandard, 5.0);
  recorder.record("b", 1, serve::Priority::kSheddable, 0.0);
  recorder.record("a", 2, serve::Priority::kCritical, 2.5);
  EXPECT_EQ(recorder.size(), 3u);

  const auto script = recorder.script();
  EXPECT_EQ(script.name, "recorded");
  EXPECT_EQ(script.seed, 0u);
  ASSERT_EQ(script.events.size(), 3u);
  for (std::size_t i = 1; i < script.events.size(); ++i) {
    EXPECT_LE(script.events[i - 1].at_ms, script.events[i].at_ms);
  }
  // And the recorded script survives the text form.
  const auto parsed = serve::LoadScript::from_text(script.to_text());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().events.size(), 3u);
}

// --- Replay ----------------------------------------------------------

struct ReplayWorkload {
  dnn::SparseDnn net;
  dnn::DenseMatrix samples;

  ReplayWorkload()
      : net([] {
          radixnet::RadixNetOptions opt;
          opt.neurons = 64;
          opt.layers = 4;
          opt.seed = 13;
          return radixnet::make_radixnet(opt);
        }()),
        samples([] {
          data::SdgcInputOptions opt;
          opt.neurons = 64;
          opt.batch = 16;
          opt.seed = 14;
          return data::make_sdgc_input(opt).features;
        }()) {
    net.ensure_csc();
  }
};

TEST(LoadReplay, ServedOutputsMatchSerialStreamInference) {
  ReplayWorkload wl;
  dnn::ReferenceEngine oracle_engine;
  const auto oracle =
      core::stream_inference(oracle_engine, wl.net, wl.samples, {});

  serve::LoadScriptSpec spec;
  spec.shape = "poisson";
  spec.tenants = {"t"};
  spec.requests_per_tenant = 20;
  spec.mean_gap_ms = 1.0;
  spec.seed = 3;
  spec.samples = 16;
  const auto script = serve::make_load_script(spec);

  dnn::ReferenceEngine engine;
  serve::ReplayOptions opt;
  opt.max_batch = 4;
  serve::LoadReplayer replayer(opt);
  replayer.add_tenant("t", engine, wl.net, wl.samples);
  const auto report = replayer.run(script);

  EXPECT_EQ(report.completed(), script.events.size());
  for (const auto& request : report.requests) {
    ASSERT_TRUE(request.served());
    const std::size_t column = request.sample % wl.samples.cols();
    ASSERT_EQ(request.output.size(),
              static_cast<std::size_t>(oracle.outputs.rows()));
    EXPECT_EQ(std::memcmp(request.output.data(),
                          oracle.outputs.col(column),
                          request.output.size() * sizeof(float)),
              0)
        << "request " << request.index;
  }
  // Batches never exceed the configured engine batch.
  for (const auto& batch : report.batches) {
    EXPECT_LE(batch.request_indices.size(), opt.max_batch);
    EXPECT_FALSE(batch.request_indices.empty());
  }
}

TEST(LoadReplay, KeepRowsTruncatesOutputs) {
  ReplayWorkload wl;
  dnn::ReferenceEngine engine;
  serve::LoadScriptSpec spec;
  spec.shape = "poisson";
  spec.tenants = {"t"};
  spec.requests_per_tenant = 6;
  spec.seed = 4;
  spec.samples = 16;
  serve::ReplayOptions opt;
  opt.keep_rows = 8;
  serve::LoadReplayer replayer(opt);
  replayer.add_tenant("t", engine, wl.net, wl.samples);
  const auto report = replayer.run(serve::make_load_script(spec));
  for (const auto& request : report.requests) {
    ASSERT_TRUE(request.served());
    EXPECT_EQ(request.output.size(), 8u);
  }
}

TEST(LoadReplay, AdmissionDefendsGoodputUnderScriptedOverload) {
  ReplayWorkload wl;
  baselines::SerialEngine engine;

  // 2x overload: arrivals twice as fast as the virtual server drains.
  serve::LoadScriptSpec spec;
  spec.shape = "poisson";
  spec.tenants = {"t"};
  spec.requests_per_tenant = 192;
  spec.mean_gap_ms = 0.14;  // capacity is ~0.28 ms/request at batch 16
  spec.deadline_ms = 10.0;
  spec.seed = 6;
  spec.samples = 16;
  const auto script = serve::make_load_script(spec);

  const auto run = [&](bool admission) {
    serve::ReplayOptions opt;
    opt.max_batch = 16;
    opt.run_engines = false;
    if (admission) {
      opt.admission.enabled = true;
      opt.admission.max_queue_depth = 32;
    }
    serve::LoadReplayer replayer(opt);
    replayer.add_tenant("t", engine, wl.net, wl.samples);
    return replayer.run(script);
  };

  const auto uncontrolled = run(false);
  const auto controlled = run(true);
  // The uncontrolled intake accepts everything and burns capacity (and
  // makespan) on requests that are already dead; admission keeps the
  // backlog short, so in-budget completions per virtual second — the
  // quantity the controller exists to defend — come out strictly ahead.
  EXPECT_EQ(uncontrolled.rejected(), 0u);
  EXPECT_GT(controlled.rejected(), 0u);
  EXPECT_GT(controlled.goodput_per_s(), uncontrolled.goodput_per_s());
  EXPECT_GE(controlled.completed(), uncontrolled.completed());
  EXPECT_LT(controlled.makespan_ms, uncontrolled.makespan_ms);
}

TEST(LoadReplay, StormTriagesInsteadOfServingTheDead) {
  ReplayWorkload wl;
  baselines::SerialEngine engine;

  // Same-deadline storm: everyone's budget expires at the same absolute
  // instant. Whatever cannot be served by then must be triaged (timed
  // out at dispatch), never served late into the void.
  serve::LoadScriptSpec spec;
  spec.shape = "storm";
  spec.tenants = {"t"};
  spec.requests_per_tenant = 64;
  spec.storm_window_ms = 1.0;
  spec.deadline_ms = 4.0;
  spec.seed = 12;
  spec.samples = 16;
  const auto script = serve::make_load_script(spec);

  serve::ReplayOptions opt;
  opt.max_batch = 8;
  opt.run_engines = false;
  opt.admission.enabled = true;
  opt.admission.max_queue_depth = 256;
  serve::LoadReplayer replayer(opt);
  replayer.add_tenant("t", engine, wl.net, wl.samples);
  const auto report = replayer.run(script);

  const auto& stats = report.tenant("t");
  EXPECT_GT(stats.completed, 0u);
  EXPECT_GT(stats.timed_out, 0u);  // the storm exceeds 4 ms of capacity
  EXPECT_EQ(stats.completed + stats.late + stats.timed_out + stats.shed +
                stats.rejected + stats.failed,
            stats.submitted);
  // Requests the deadline already killed must not have ridden a batch.
  for (const auto& request : report.requests) {
    if (request.outcome == serve::ReplayOutcome::kTimedOut) {
      EXPECT_LT(request.dispatch_ms, 0.0);
    }
  }
}

TEST(LoadReplay, RoundRobinSharesTheVirtualServerAcrossTenants) {
  ReplayWorkload wl;
  baselines::SerialEngine engine_a;
  baselines::SerialEngine engine_b;

  serve::LoadScriptSpec spec;
  spec.shape = "poisson";
  spec.tenants = {"a", "b"};
  spec.requests_per_tenant = 48;
  spec.mean_gap_ms = 0.1;  // both lanes always have pending work
  spec.seed = 5;
  spec.samples = 16;
  const auto script = serve::make_load_script(spec);

  serve::ReplayOptions opt;
  opt.max_batch = 8;
  opt.run_engines = false;
  serve::LoadReplayer replayer(opt);
  replayer.add_tenant("a", engine_a, wl.net, wl.samples);
  replayer.add_tenant("b", engine_b, wl.net, wl.samples);
  const auto report = replayer.run(script);

  EXPECT_EQ(report.tenant("a").completed, 48u);
  EXPECT_EQ(report.tenant("b").completed, 48u);
  // Under saturation the round-robin cursor alternates lanes: no tenant
  // serves three batches in a row while the other is pending.
  std::size_t longest_run = 0, current = 0;
  std::string last;
  for (const auto& batch : report.batches) {
    current = batch.tenant == last ? current + 1 : 1;
    last = batch.tenant;
    longest_run = std::max(longest_run, current);
  }
  EXPECT_LE(longest_run, 2u);
}

}  // namespace
