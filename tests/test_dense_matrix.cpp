#include "sparse/dense_matrix.hpp"

#include <gtest/gtest.h>

namespace snicit::sparse {
namespace {

TEST(DenseMatrix, ConstructionAndShape) {
  DenseMatrix m(3, 5, 1.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 5u);
  EXPECT_FALSE(m.empty());
  for (std::size_t j = 0; j < 5; ++j) {
    for (std::size_t r = 0; r < 3; ++r) {
      EXPECT_FLOAT_EQ(m.at(r, j), 1.5f);
    }
  }
}

TEST(DenseMatrix, DefaultIsEmpty) {
  DenseMatrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(DenseMatrix, ColumnsAreContiguousColumnMajor) {
  DenseMatrix m(4, 3);
  m.at(2, 1) = 7.0f;
  // Column pointer arithmetic must match at().
  EXPECT_FLOAT_EQ(m.col(1)[2], 7.0f);
  EXPECT_EQ(m.col(1), m.data() + 4);
  EXPECT_EQ(m.col(2), m.data() + 8);
}

TEST(DenseMatrix, ColSpanCoversColumn) {
  DenseMatrix m(4, 2);
  auto span = m.col_span(1);
  EXPECT_EQ(span.size(), 4u);
  span[3] = 9.0f;
  EXPECT_FLOAT_EQ(m.at(3, 1), 9.0f);
}

TEST(DenseMatrix, ResetZeroFills) {
  DenseMatrix m(2, 2, 5.0f);
  m.reset(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.count_nonzeros(), 0u);
}

TEST(DenseMatrix, ResetNoFillPreservesContentsAtSameShape) {
  DenseMatrix m(2, 3, 4.0f);
  m.reset(2, 3, ZeroFill::kNo);
  // Same footprint, no fill: the storage (and its contents) stay put.
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FLOAT_EQ(m.at(1, 2), 4.0f);
  // Explicit zero fill is the old reset behaviour.
  m.reset(2, 3, ZeroFill::kYes);
  EXPECT_EQ(m.count_nonzeros(), 0u);
}

TEST(DenseMatrix, ResetNeverShrinksCapacity) {
  DenseMatrix m;
  m.reset(16, 16, ZeroFill::kYes);
  const std::size_t cap = m.capacity();
  EXPECT_GE(cap, 16u * 16u);
  // Shrinking the shape keeps the storage: the workspace reuse contract.
  m.reset(2, 2, ZeroFill::kNo);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.capacity(), cap);
  // Growing back within capacity is allocation-free (capacity unchanged).
  m.reset(16, 16, ZeroFill::kNo);
  EXPECT_EQ(m.capacity(), cap);
  // Growing beyond it grows the capacity.
  m.reset(32, 32, ZeroFill::kNo);
  EXPECT_GE(m.capacity(), 32u * 32u);
}

TEST(DenseMatrix, CountNonzerosWithTolerance) {
  DenseMatrix m(2, 2);
  m.at(0, 0) = 0.5f;
  m.at(1, 0) = -0.01f;
  m.at(0, 1) = 0.0f;
  m.at(1, 1) = 2.0f;
  EXPECT_EQ(m.count_nonzeros(), 3u);
  EXPECT_EQ(m.count_nonzeros(0.1f), 2u);
}

TEST(DenseMatrix, ColumnNonzeros) {
  DenseMatrix m(3, 2);
  m.at(0, 0) = 1.0f;
  m.at(2, 0) = -1.0f;
  EXPECT_EQ(m.column_nonzeros(0), 2u);
  EXPECT_EQ(m.column_nonzeros(1), 0u);
}

TEST(DenseMatrix, MaxAbsDiff) {
  DenseMatrix a(2, 2);
  DenseMatrix b(2, 2);
  a.at(1, 1) = 3.0f;
  b.at(1, 1) = 1.0f;
  b.at(0, 0) = -0.5f;
  EXPECT_FLOAT_EQ(DenseMatrix::max_abs_diff(a, b), 2.0f);
  EXPECT_FLOAT_EQ(DenseMatrix::max_abs_diff(a, a), 0.0f);
}

TEST(DenseMatrix, FillOverwritesEverything) {
  DenseMatrix m(3, 3, 2.0f);
  m.fill(0.0f);
  EXPECT_EQ(m.count_nonzeros(), 0u);
}

}  // namespace
}  // namespace snicit::sparse
