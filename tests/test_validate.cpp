#include "dnn/validate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dnn/builder.hpp"
#include "radixnet/radixnet.hpp"

namespace snicit::dnn {
namespace {

TEST(Validate, HealthyRadixNetPasses) {
  radixnet::RadixNetOptions opt;
  opt.neurons = 64;
  opt.layers = 4;
  opt.fanin = 8;
  const auto net = radixnet::make_radixnet(opt);
  const auto report = validate_model(net);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.errors(), 0u);
  // Butterfly layers touch every input: no warnings either.
  EXPECT_EQ(report.warnings(), 0u);
}

TEST(Validate, NanWeightIsError) {
  DnnBuilder builder(4);
  const auto net =
      builder.add_layer({{0, 0, std::nanf("")}, {1, 1, 1.0f}}).build();
  const auto report = validate_model(net);
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.errors(), 1u);
}

TEST(Validate, InfiniteBiasIsError) {
  DnnBuilder builder(4);
  const auto net =
      builder.add_banded_layer(0, 1.0f)
          .with_bias(std::vector<float>{
              0.0f, std::numeric_limits<float>::infinity(), 0.0f, 0.0f})
          .build();
  const auto report = validate_model(net);
  EXPECT_FALSE(report.ok());
}

TEST(Validate, DeadRowsAreWarnings) {
  DnnBuilder builder(4);
  // Only row 0 has in-edges; rows 1-3 are dead.
  const auto net = builder.add_layer({{0, 0, 1.0f}, {0, 1, 1.0f}}).build();
  const auto report = validate_model(net);
  EXPECT_TRUE(report.ok());  // warnings don't fail validation
  EXPECT_GE(report.warnings(), 1u);
  bool found = false;
  for (const auto& issue : report.issues) {
    if (issue.message.find("no in-edges") != std::string::npos) {
      EXPECT_NE(issue.message.find("3"), std::string::npos);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Validate, UnusedInputsAreWarnings) {
  DnnBuilder builder(4);
  const auto net = builder
                       .add_layer({{0, 0, 1.0f},
                                   {1, 0, 1.0f},
                                   {2, 0, 1.0f},
                                   {3, 0, 1.0f}})
                       .build();
  const auto report = validate_model(net);
  bool found = false;
  for (const auto& issue : report.issues) {
    if (issue.message.find("feed no output") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Validate, EmptyLayerIsWarning) {
  DnnBuilder builder(4);
  const auto net = builder.add_layer({}).build();
  const auto report = validate_model(net);
  EXPECT_TRUE(report.ok());
  bool found = false;
  for (const auto& issue : report.issues) {
    if (issue.message.find("no weights") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Validate, IssuesCarryLayerIndex) {
  DnnBuilder builder(4);
  builder.add_banded_layer(1, 1.0f);                 // healthy
  builder.add_layer({{0, 0, std::nanf("")}});        // broken layer 1
  const auto net = builder.build();
  const auto report = validate_model(net);
  ASSERT_FALSE(report.issues.empty());
  bool layer1 = false;
  for (const auto& issue : report.issues) {
    if (issue.severity == ValidationIssue::Severity::kError) {
      EXPECT_EQ(issue.layer, 1u);
      layer1 = true;
    }
  }
  EXPECT_TRUE(layer1);
}

}  // namespace
}  // namespace snicit::dnn
