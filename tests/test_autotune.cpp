#include "baselines/autotune.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "radixnet/radixnet.hpp"

namespace snicit::baselines {
namespace {

struct Workload {
  dnn::SparseDnn net;
  dnn::DenseMatrix input;
};

Workload make_workload(int layers, std::uint64_t seed = 20) {
  radixnet::RadixNetOptions opt;
  opt.neurons = 128;
  opt.layers = layers;
  opt.fanin = 16;
  opt.seed = seed;
  auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = 128;
  in_opt.batch = 32;
  in_opt.seed = seed + 1;
  auto input = data::make_sdgc_input(in_opt).features;
  return {std::move(net), std::move(input)};
}

TEST(Autotune, MatchesReference) {
  auto wl = make_workload(16);
  AutotuneEngine engine;
  const auto result = engine.run(wl.net, wl.input);
  const auto golden = dnn::reference_forward(wl.net, wl.input);
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, golden), 1e-3f);
  EXPECT_EQ(result.layer_ms.size(), 16u);
}

TEST(Autotune, CommitsAfterTriallingAllArms) {
  auto wl = make_workload(20);
  AutotuneEngine engine;
  engine.run(wl.net, wl.input);
  // With 20 layers and 1 trial round per arm, at least the bucket the
  // steady-state density falls into must have committed to a valid
  // kernel variant.
  const auto arms = engine.committed_arms();
  bool any_committed = false;
  for (int arm : arms) {
    if (arm >= 0) {
      EXPECT_LT(arm, sparse::kNumSpmmVariants);
      any_committed = true;
    }
  }
  EXPECT_TRUE(any_committed);
}

TEST(Autotune, ForcedVariantSkipsTrials) {
  auto wl = make_workload(8);
  AutotuneOptions opt;
  opt.policy.variant = sparse::SpmmVariant::kGatherSimd;
  AutotuneEngine engine(opt);
  const auto result = engine.run(wl.net, wl.input);
  const auto golden = dnn::reference_forward(wl.net, wl.input);
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, golden), 1e-3f);
  // Every bucket reports the forced variant, even ones never visited.
  for (int arm : engine.committed_arms()) {
    EXPECT_EQ(arm, static_cast<int>(sparse::SpmmVariant::kGatherSimd));
  }
}

TEST(Autotune, ArmListCoversKernelFamily) {
  AutotuneEngine engine;
  const auto arms = engine.arm_list();
  EXPECT_GE(arms.size(), 5u);  // scalar/SIMD gather, tiled, 2x scatter
  for (auto v : arms) {
    EXPECT_GE(static_cast<int>(v), 0);
    EXPECT_LT(static_cast<int>(v), sparse::kNumSpmmVariants);
  }
}

TEST(Autotune, ShortNetMayStayInTrialsButIsStillExact) {
  auto wl = make_workload(2);  // fewer layers than arms
  AutotuneEngine engine;
  const auto result = engine.run(wl.net, wl.input);
  const auto golden = dnn::reference_forward(wl.net, wl.input);
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, golden), 1e-3f);
}

TEST(Autotune, DiagnosticsExposeArms) {
  auto wl = make_workload(20);
  AutotuneEngine engine;
  const auto result = engine.run(wl.net, wl.input);
  EXPECT_EQ(result.diagnostics.count("bucket0_arm"), 1u);
  EXPECT_EQ(result.diagnostics.count("bucket1_arm"), 1u);
  EXPECT_EQ(result.diagnostics.count("bucket2_arm"), 1u);
}

TEST(Autotune, TrialRoundsRespected) {
  auto wl = make_workload(30);
  AutotuneOptions opt;
  opt.trial_rounds = 3;  // 9 trial layers before a bucket commits
  AutotuneEngine engine(opt);
  const auto result = engine.run(wl.net, wl.input);
  const auto golden = dnn::reference_forward(wl.net, wl.input);
  EXPECT_LE(dnn::DenseMatrix::max_abs_diff(result.output, golden), 1e-3f);
}

TEST(AutotuneDeathTest, InvalidOptionsAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        AutotuneOptions opt;
        opt.trial_rounds = 0;
        AutotuneEngine engine(opt);
      },
      "trial_rounds");
}

}  // namespace
}  // namespace snicit::baselines
