#include "dnn/reference.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "radixnet/radixnet.hpp"
#include "sparse/coo.hpp"

namespace snicit::dnn {
namespace {

/// A tiny hand-checkable network: 2 neurons, 1 layer,
/// W = [[0.5, 0], [1, -1]], b = [0.1, -0.1], ymax = 1.
SparseDnn tiny_net() {
  sparse::CooMatrix coo(2, 2);
  coo.add(0, 0, 0.5f);
  coo.add(1, 0, 1.0f);
  coo.add(1, 1, -1.0f);
  std::vector<sparse::CsrMatrix> w;
  w.push_back(sparse::CsrMatrix::from_coo(coo));
  std::vector<std::vector<float>> b = {{0.1f, -0.1f}};
  return SparseDnn(2, std::move(w), std::move(b), 1.0f, "tiny");
}

TEST(Reference, HandComputedSingleLayer) {
  const auto net = tiny_net();
  DenseMatrix x(2, 2);
  x.at(0, 0) = 1.0f;  // col0 = (1, 0)
  x.at(1, 1) = 2.0f;  // col1 = (0, 2)
  const auto y = reference_forward(net, x);
  // col0: σ(0.5*1+0.1)=0.6 ; σ(1*1-0*1-0.1)=0.9
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.6f);
  EXPECT_FLOAT_EQ(y.at(1, 0), 0.9f);
  // col1: σ(0+0.1)=0.1 ; σ(-2-0.1)=0
  EXPECT_FLOAT_EQ(y.at(0, 1), 0.1f);
  EXPECT_FLOAT_EQ(y.at(1, 1), 0.0f);
}

TEST(Reference, LayerRangeComposition) {
  radixnet::RadixNetOptions opt;
  opt.neurons = 64;
  opt.layers = 6;
  opt.fanin = 8;
  const auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = 64;
  in_opt.batch = 10;
  const auto input = data::make_sdgc_input(in_opt).features;

  const auto full = reference_forward(net, input);
  const auto mid = reference_forward(net, input, 0, 3);
  const auto composed = reference_forward(net, mid, 3, 6);
  EXPECT_FLOAT_EQ(DenseMatrix::max_abs_diff(full, composed), 0.0f);
}

TEST(Reference, EngineMatchesFreeFunction) {
  radixnet::RadixNetOptions opt;
  opt.neurons = 32;
  opt.layers = 4;
  opt.fanin = 4;
  const auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = 32;
  in_opt.batch = 8;
  const auto input = data::make_sdgc_input(in_opt).features;

  ReferenceEngine engine;
  auto result = engine.run(net, input);
  EXPECT_FLOAT_EQ(
      DenseMatrix::max_abs_diff(result.output, reference_forward(net, input)),
      0.0f);
  EXPECT_EQ(result.layer_ms.size(), 4u);
  EXPECT_GT(result.total_ms(), 0.0);
}

TEST(Reference, OutputsRespectActivationBounds) {
  radixnet::RadixNetOptions opt;
  opt.neurons = 128;
  opt.layers = 10;
  opt.fanin = 16;
  const auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = 128;
  in_opt.batch = 16;
  const auto input = data::make_sdgc_input(in_opt).features;
  const auto y = reference_forward(net, input);
  for (std::size_t i = 0; i < y.rows() * y.cols(); ++i) {
    EXPECT_GE(y.data()[i], 0.0f);
    EXPECT_LE(y.data()[i], net.ymax());
  }
}

TEST(Categories, ArgmaxPicksLargestLeadingRow) {
  DenseMatrix y(5, 2);
  y.at(1, 0) = 3.0f;
  y.at(4, 0) = 9.0f;  // outside the first 3 classes — must be ignored
  y.at(2, 1) = 1.0f;
  const auto cats = argmax_categories(y, 3);
  EXPECT_EQ(cats[0], 1);
  EXPECT_EQ(cats[1], 2);
}

TEST(Categories, SdgcActiveFlag) {
  DenseMatrix y(3, 3);
  y.at(2, 0) = 0.5f;
  // col 1 all zero; col 2 sub-tolerance
  y.at(0, 2) = 1e-6f;
  auto cats = sdgc_categories(y, 1e-4f);
  EXPECT_EQ(cats[0], 1);
  EXPECT_EQ(cats[1], 0);
  EXPECT_EQ(cats[2], 0);
}

TEST(Categories, MatchRate) {
  EXPECT_DOUBLE_EQ(category_match_rate({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(category_match_rate({1, 2, 3, 4}, {1, 0, 3, 0}), 0.5);
  EXPECT_DOUBLE_EQ(category_match_rate({}, {}), 1.0);
}

TEST(SparseDnnModel, ConnectionAndDensityAccounting) {
  radixnet::RadixNetOptions opt;
  opt.neurons = 64;
  opt.layers = 3;
  opt.fanin = 8;
  const auto net = radixnet::make_radixnet(opt);
  EXPECT_EQ(net.connections(), 64 * 8 * 3);
  EXPECT_NEAR(net.density(), 8.0 / 64.0, 1e-12);
}

TEST(SparseDnnModel, CscMirrorMatchesCsr) {
  radixnet::RadixNetOptions opt;
  opt.neurons = 32;
  opt.layers = 2;
  opt.fanin = 4;
  const auto net = radixnet::make_radixnet(opt);
  net.ensure_csc();
  for (std::size_t l = 0; l < 2; ++l) {
    EXPECT_EQ(net.weight_csc(l).nnz(), net.weight(l).nnz());
    EXPECT_TRUE(net.weight_csc(l).is_valid());
  }
}

}  // namespace
}  // namespace snicit::dnn
