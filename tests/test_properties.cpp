// Parameterised property suites over the SNICIT invariants:
//   P1  recover(convert(Y)) == Y (up to float addition)
//   P2  SNICIT(no pruning) ~= reference, for any (t, s, n, kernel)
//   P3  compressed nnz <= dense nnz after conversion on clustered batches
//   P4  ne_idx is always sorted, unique, and consistent with ne_rec
//   P5  centroid count is in [1, s]
#include <gtest/gtest.h>

#include <set>

#include "data/synthetic.hpp"
#include "dnn/reference.hpp"
#include "platform/rng.hpp"
#include "radixnet/radixnet.hpp"
#include "snicit/convert.hpp"
#include "snicit/engine.hpp"
#include "snicit/recovery.hpp"
#include "snicit/sample_prune.hpp"
#include "snicit/sampling.hpp"

namespace snicit::core {
namespace {

class ConvertRecoverProperty : public ::testing::TestWithParam<int> {};

TEST_P(ConvertRecoverProperty, RoundTripWithinFloatTolerance) {
  const int seed = GetParam();
  platform::Rng rng(static_cast<std::uint64_t>(seed));
  const std::size_t n = 16 + rng.next_below(64);
  const std::size_t b = 4 + rng.next_below(60);
  DenseMatrix y(n, b);
  for (std::size_t i = 0; i < n * b; ++i) {
    y.data()[i] = rng.uniform(0.0f, 32.0f);
  }
  // Random centroid subset (always includes column 0).
  std::vector<sparse::Index> centroids = {0};
  for (std::size_t j = 1; j < b; ++j) {
    if (rng.next_bool(0.2)) centroids.push_back(static_cast<sparse::Index>(j));
  }
  const auto batch = convert_to_compressed(y, centroids, 0.0f);
  const auto recovered = recover_results(batch);
  // (a - b) + b can round, but stays within one ulp of the magnitudes here.
  EXPECT_LE(DenseMatrix::max_abs_diff(recovered, y), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvertRecoverProperty,
                         ::testing::Range(1, 17));

struct EngineParamCase {
  int threshold;
  int sample_size;
  int downsample;
  PreKernel kernel;
};

class SnicitEquivalenceProperty
    : public ::testing::TestWithParam<EngineParamCase> {};

TEST_P(SnicitEquivalenceProperty, MatchesReferenceCategories) {
  const auto param = GetParam();
  radixnet::RadixNetOptions opt;
  opt.neurons = 128;
  opt.layers = 14;
  opt.fanin = 16;
  opt.seed = 31;
  const auto net = radixnet::make_radixnet(opt);
  data::SdgcInputOptions in_opt;
  in_opt.neurons = 128;
  in_opt.batch = 40;
  in_opt.classes = 5;
  in_opt.seed = 32;
  const auto input = data::make_sdgc_input(in_opt).features;
  const auto golden = dnn::reference_forward(net, input);

  SnicitParams params;
  params.threshold_layer = param.threshold;
  params.sample_size = param.sample_size;
  params.downsample_dim = param.downsample;
  params.pre_kernel = param.kernel;
  SnicitEngine engine(params);
  const auto result = engine.run(net, input);

  EXPECT_LE(DenseMatrix::max_abs_diff(result.output, golden), 5e-3f);
  EXPECT_DOUBLE_EQ(
      dnn::category_match_rate(dnn::sdgc_categories(result.output, 1e-3f),
                               dnn::sdgc_categories(golden, 1e-3f)),
      1.0);
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, SnicitEquivalenceProperty,
    ::testing::Values(
        EngineParamCase{2, 8, 0, PreKernel::kScatter},
        EngineParamCase{6, 16, 0, PreKernel::kScatter},
        EngineParamCase{6, 16, 8, PreKernel::kScatter},
        EngineParamCase{6, 40, 16, PreKernel::kGather},
        EngineParamCase{10, 16, 0, PreKernel::kTiled},
        EngineParamCase{13, 8, 8, PreKernel::kScatter},
        EngineParamCase{14, 8, 0, PreKernel::kScatter}));

class CompressionProperty : public ::testing::TestWithParam<int> {};

TEST_P(CompressionProperty, ConversionNeverInflatesClusteredBatches) {
  const int seed = GetParam();
  // Clustered batch: k prototypes, members differ in few entries.
  platform::Rng rng(static_cast<std::uint64_t>(seed) * 7 + 1);
  const std::size_t n = 80;
  const std::size_t b = 50;
  const std::size_t k = 1 + rng.next_below(6);
  DenseMatrix proto(n, k);
  for (std::size_t i = 0; i < n * k; ++i) {
    proto.data()[i] = rng.uniform(0.0f, 32.0f);
  }
  DenseMatrix y(n, b);
  for (std::size_t j = 0; j < b; ++j) {
    const std::size_t c = j % k;
    std::copy_n(proto.col(c), n, y.col(j));
    for (std::size_t r = 0; r < n; ++r) {
      if (rng.next_bool(0.03)) y.at(r, j) += 1.0f;
    }
  }
  // First k columns cover all classes (round-robin), so use them as
  // centroids.
  std::vector<sparse::Index> centroids;
  for (std::size_t c = 0; c < k; ++c) {
    centroids.push_back(static_cast<sparse::Index>(c));
  }
  const auto batch = convert_to_compressed(y, centroids, 0.0f);
  EXPECT_LE(batch.yhat.count_nonzeros(), y.count_nonzeros());

  // P4: ne_idx sorted, unique, consistent with ne_rec.
  std::set<sparse::Index> seen;
  for (std::size_t i = 0; i < batch.ne_idx.size(); ++i) {
    if (i > 0) EXPECT_LT(batch.ne_idx[i - 1], batch.ne_idx[i]);
    seen.insert(batch.ne_idx[i]);
    EXPECT_EQ(batch.ne_rec[static_cast<std::size_t>(batch.ne_idx[i])], 1);
  }
  for (std::size_t j = 0; j < b; ++j) {
    if (batch.ne_rec[j] != 0) {
      const bool listed = seen.count(static_cast<sparse::Index>(j)) > 0;
      EXPECT_TRUE(listed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressionProperty,
                         ::testing::Range(1, 13));

class CentroidCountProperty : public ::testing::TestWithParam<int> {};

TEST_P(CentroidCountProperty, BoundedBySampleSize) {
  const int s = GetParam();
  platform::Rng rng(static_cast<std::uint64_t>(s));
  DenseMatrix y(64, 100);
  for (std::size_t i = 0; i < 64 * 100; ++i) {
    y.data()[i] = rng.uniform(0.0f, 32.0f);
  }
  const auto f = build_sample_matrix(y, s, 16);
  const auto centroids = prune_samples(f, 0.03f, 0.03f);
  EXPECT_GE(centroids.size(), 1u);
  EXPECT_LE(centroids.size(), static_cast<std::size_t>(s));
  for (auto c : centroids) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, s);
  }
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, CentroidCountProperty,
                         ::testing::Values(1, 2, 8, 32, 64, 100));

}  // namespace
}  // namespace snicit::core
