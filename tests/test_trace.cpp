#include "platform/trace.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "platform/json.hpp"

namespace snicit::platform::trace {
namespace {

// The trace store is process-global, so every test starts from an empty,
// enabled capture and leaves the flag off for whoever runs next.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    clear();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    clear();
  }
};

std::vector<TraceEvent> events_named(const std::vector<TraceEvent>& all,
                                     const std::string& name) {
  std::vector<TraceEvent> out;
  for (const auto& e : all) {
    if (name == e.name) out.push_back(e);
  }
  return out;
}

TEST_F(TraceTest, SpanRecordsCompleteEvent) {
  {
    TraceSpan span("unit_span", "test");
    EXPECT_TRUE(span.active());
  }
  const auto all = snapshot();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_STREQ(all[0].name, "unit_span");
  EXPECT_STREQ(all[0].category, "test");
  EXPECT_EQ(all[0].phase, 'X');
  EXPECT_GE(all[0].ts_us, 0.0);
  EXPECT_GE(all[0].dur_us, 0.0);
}

TEST_F(TraceTest, DisabledModeIsNoOp) {
  set_enabled(false);
  {
    TraceSpan span("ignored", "test");
    EXPECT_FALSE(span.active());
    counter("ignored_counter", 1.0);
  }
  SNICIT_TRACE_SPAN("ignored_macro", "test");
  SNICIT_TRACE_COUNTER("ignored_macro_counter", 2.0);
  EXPECT_EQ(event_count(), 0u);
}

TEST_F(TraceTest, EnableDecisionIsTakenAtSpanConstruction) {
  set_enabled(false);
  {
    TraceSpan span("opened_while_disabled", "test");
    set_enabled(true);  // flipping mid-span must not retroactively record
  }
  EXPECT_EQ(event_count(), 0u);
}

TEST_F(TraceTest, SequentialSpansSortByStartTimestamp) {
  { TraceSpan a("span_a", "test"); }
  { TraceSpan b("span_b", "test"); }
  { TraceSpan c("span_c", "test"); }
  const auto all = snapshot();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_STREQ(all[0].name, "span_a");
  EXPECT_STREQ(all[1].name, "span_b");
  EXPECT_STREQ(all[2].name, "span_c");
  EXPECT_LE(all[0].ts_us, all[1].ts_us);
  EXPECT_LE(all[1].ts_us, all[2].ts_us);
}

TEST_F(TraceTest, NestedSpansAreContainedInParent) {
  // Chrome infers hierarchy from ts/dur containment per tid, so nesting
  // correctness *is* the containment invariant.
  {
    TraceSpan outer("outer", "test");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
      TraceSpan inner("inner", "test");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto all = snapshot();
  const auto outers = events_named(all, "outer");
  const auto inners = events_named(all, "inner");
  ASSERT_EQ(outers.size(), 1u);
  ASSERT_EQ(inners.size(), 1u);
  EXPECT_EQ(outers[0].tid, inners[0].tid);
  EXPECT_GE(inners[0].ts_us, outers[0].ts_us);
  EXPECT_LE(inners[0].ts_us + inners[0].dur_us,
            outers[0].ts_us + outers[0].dur_us);
  // Sorted by start: the parent comes first.
  EXPECT_STREQ(all[0].name, "outer");
}

TEST_F(TraceTest, CounterRecordsValueSample) {
  counter("queue_depth", 3.0);
  counter("queue_depth", 5.0);
  const auto samples = events_named(snapshot(), "queue_depth");
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].phase, 'C');
  EXPECT_DOUBLE_EQ(samples[0].value, 3.0);
  EXPECT_DOUBLE_EQ(samples[1].value, 5.0);
  EXPECT_LE(samples[0].ts_us, samples[1].ts_us);
}

TEST_F(TraceTest, ClearDiscardsEverything) {
  { SNICIT_TRACE_SPAN("pre_clear", "test"); }
  ASSERT_EQ(event_count(), 1u);
  clear();
  EXPECT_EQ(event_count(), 0u);
  EXPECT_TRUE(snapshot().empty());
}

TEST_F(TraceTest, MergesPerThreadBuffersWithDistinctTids) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([] {
      TraceSpan span("worker_span", "test");
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    });
  }
  for (auto& th : threads) th.join();
  { TraceSpan span("main_span", "test"); }

  const auto all = snapshot();
  const auto workers = events_named(all, "worker_span");
  const auto mains = events_named(all, "main_span");
  ASSERT_EQ(workers.size(), static_cast<std::size_t>(kThreads));
  ASSERT_EQ(mains.size(), 1u);
  std::set<std::uint32_t> tids;
  for (const auto& e : workers) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(tids.count(mains[0].tid), 0u);
}

TEST_F(TraceTest, ChromeJsonRoundTripsThroughParser) {
  {
    TraceSpan span("json_span", "test");
    counter("json_counter", 7.5);
  }
  const auto doc = JsonValue::parse(chrome_trace_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.get("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.get("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.size(), 2u);

  // Sorted by ts: the counter fired inside the span, which starts first.
  const auto& span_event = events.at(0);
  EXPECT_EQ(span_event.get("name").as_string(), "json_span");
  EXPECT_EQ(span_event.get("ph").as_string(), "X");
  EXPECT_EQ(span_event.get("cat").as_string(), "test");
  EXPECT_GE(span_event.get("dur").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(span_event.get("pid").as_number(), 0.0);
  EXPECT_GE(span_event.get("tid").as_number(), 0.0);

  const auto& counter_event = events.at(1);
  EXPECT_EQ(counter_event.get("name").as_string(), "json_counter");
  EXPECT_EQ(counter_event.get("ph").as_string(), "C");
  EXPECT_FALSE(counter_event.has("dur"));
  EXPECT_FALSE(counter_event.has("cat"));
  EXPECT_DOUBLE_EQ(counter_event.get("args").get("value").as_number(), 7.5);
}

TEST_F(TraceTest, EmptyCategoryIsOmittedFromJson) {
  { TraceSpan span("uncategorized"); }
  const auto doc = JsonValue::parse(chrome_trace_json());
  const auto& event = doc.get("traceEvents").at(0);
  EXPECT_EQ(event.get("name").as_string(), "uncategorized");
  EXPECT_FALSE(event.has("cat"));
}

TEST_F(TraceTest, WriteChromeTraceProducesLoadableFile) {
  { SNICIT_TRACE_SPAN("file_span", "test"); }
  const std::string path = ::testing::TempDir() + "trace_roundtrip.json";
  ASSERT_TRUE(write_chrome_trace(path));

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());

  const auto doc = JsonValue::parse(contents);
  EXPECT_EQ(doc.get("traceEvents").size(), 1u);
  EXPECT_EQ(doc.get("traceEvents").at(0).get("name").as_string(),
            "file_span");
}

}  // namespace
}  // namespace snicit::platform::trace
