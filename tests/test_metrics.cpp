#include "train/metrics.hpp"

#include <gtest/gtest.h>

namespace snicit::train {
namespace {

TEST(ConfusionMatrixTest, PerfectPredictions) {
  const auto cm = ConfusionMatrix::from_predictions({0, 1, 2, 1}, {0, 1, 2, 1}, 3);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  for (int c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(cm.precision(c), 1.0);
    EXPECT_DOUBLE_EQ(cm.recall(c), 1.0);
    EXPECT_DOUBLE_EQ(cm.f1(c), 1.0);
  }
  EXPECT_DOUBLE_EQ(cm.macro_f1(), 1.0);
}

TEST(ConfusionMatrixTest, KnownCounts) {
  // actual 0 predicted 0 twice; actual 0 predicted 1 once; actual 1
  // predicted 1 once.
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(1, 0);
  cm.add(1, 1);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_EQ(cm.count(0, 0), 2u);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_EQ(cm.count(1, 1), 1u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
  EXPECT_DOUBLE_EQ(cm.precision(0), 1.0);      // predicted-0 always right
  EXPECT_DOUBLE_EQ(cm.recall(0), 2.0 / 3.0);   // one 0 missed
  EXPECT_DOUBLE_EQ(cm.precision(1), 0.5);
  EXPECT_DOUBLE_EQ(cm.recall(1), 1.0);
}

TEST(ConfusionMatrixTest, AbsentClassConventions) {
  // Class 2 never occurs and is never predicted.
  const auto cm = ConfusionMatrix::from_predictions({0, 1}, {0, 1}, 3);
  EXPECT_DOUBLE_EQ(cm.precision(2), 1.0);
  EXPECT_DOUBLE_EQ(cm.recall(2), 1.0);
  EXPECT_DOUBLE_EQ(cm.f1(2), 1.0);
}

TEST(ConfusionMatrixTest, AllWrongF1Zero) {
  const auto cm = ConfusionMatrix::from_predictions({1, 0}, {0, 1}, 2);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(0), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.macro_f1(), 0.0);
}

TEST(ConfusionMatrixTest, MacroF1IsUnweightedMean) {
  // Class 0: precision 1/2, recall 1 -> F1 = 2/3.
  // Class 1: precision 1, recall 1/2 -> F1 = 2/3.
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(1, 1);
  cm.add(0, 1);  // a true-1 predicted as 0
  EXPECT_NEAR(cm.f1(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.f1(1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.macro_f1(), 2.0 / 3.0, 1e-12);
}

TEST(ConfusionMatrixDeathTest, OutOfRangeClassAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ConfusionMatrix cm(2);
        cm.add(2, 0);
      },
      "out of range");
}

}  // namespace
}  // namespace snicit::train
