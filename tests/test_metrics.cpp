#include "train/metrics.hpp"

#include <gtest/gtest.h>

#include "platform/json.hpp"
#include "platform/metrics.hpp"
#include "platform/thread_pool.hpp"

namespace snicit::train {
namespace {

TEST(ConfusionMatrixTest, PerfectPredictions) {
  const auto cm = ConfusionMatrix::from_predictions({0, 1, 2, 1}, {0, 1, 2, 1}, 3);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  for (int c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(cm.precision(c), 1.0);
    EXPECT_DOUBLE_EQ(cm.recall(c), 1.0);
    EXPECT_DOUBLE_EQ(cm.f1(c), 1.0);
  }
  EXPECT_DOUBLE_EQ(cm.macro_f1(), 1.0);
}

TEST(ConfusionMatrixTest, KnownCounts) {
  // actual 0 predicted 0 twice; actual 0 predicted 1 once; actual 1
  // predicted 1 once.
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(1, 0);
  cm.add(1, 1);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_EQ(cm.count(0, 0), 2u);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_EQ(cm.count(1, 1), 1u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
  EXPECT_DOUBLE_EQ(cm.precision(0), 1.0);      // predicted-0 always right
  EXPECT_DOUBLE_EQ(cm.recall(0), 2.0 / 3.0);   // one 0 missed
  EXPECT_DOUBLE_EQ(cm.precision(1), 0.5);
  EXPECT_DOUBLE_EQ(cm.recall(1), 1.0);
}

TEST(ConfusionMatrixTest, AbsentClassConventions) {
  // Class 2 never occurs and is never predicted.
  const auto cm = ConfusionMatrix::from_predictions({0, 1}, {0, 1}, 3);
  EXPECT_DOUBLE_EQ(cm.precision(2), 1.0);
  EXPECT_DOUBLE_EQ(cm.recall(2), 1.0);
  EXPECT_DOUBLE_EQ(cm.f1(2), 1.0);
}

TEST(ConfusionMatrixTest, AllWrongF1Zero) {
  const auto cm = ConfusionMatrix::from_predictions({1, 0}, {0, 1}, 2);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(0), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.macro_f1(), 0.0);
}

TEST(ConfusionMatrixTest, MacroF1IsUnweightedMean) {
  // Class 0: precision 1/2, recall 1 -> F1 = 2/3.
  // Class 1: precision 1, recall 1/2 -> F1 = 2/3.
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(1, 1);
  cm.add(0, 1);  // a true-1 predicted as 0
  EXPECT_NEAR(cm.f1(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.f1(1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.macro_f1(), 2.0 / 3.0, 1e-12);
}

TEST(ConfusionMatrixDeathTest, OutOfRangeClassAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ConfusionMatrix cm(2);
        cm.add(2, 0);
      },
      "out of range");
}

}  // namespace
}  // namespace snicit::train

namespace snicit::platform::metrics {
namespace {

TEST(MetricsCounter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.get(), 0);
  c.add();
  c.add(5);
  c.add(-2);
  EXPECT_EQ(c.get(), 4);
  c.reset();
  EXPECT_EQ(c.get(), 0);
}

TEST(MetricsGauge, LastWriteWins) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.get(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.get(), -1.25);
  g.reset();
  EXPECT_DOUBLE_EQ(g.get(), 0.0);
}

TEST(MetricsSeries, PushAppendsInOrder) {
  Series s;
  s.push(1.0);
  s.push(2.0);
  s.push(3.0);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.values(), (std::vector<double>{1.0, 2.0, 3.0}));
  s.reset();
  EXPECT_EQ(s.size(), 0u);
}

TEST(MetricsSeries, RecordGrowsWithZerosAndOverwritesSlots) {
  Series s;
  s.record(3, 9.0);  // slots 0..2 backfill with zeros
  EXPECT_EQ(s.values(), (std::vector<double>{0.0, 0.0, 0.0, 9.0}));
  s.record(1, 4.0);
  s.record(3, 7.0);
  EXPECT_EQ(s.values(), (std::vector<double>{0.0, 4.0, 0.0, 7.0}));
}

TEST(MetricsRegistry, InstrumentReferencesAreStable) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("a");
  Gauge& g1 = reg.gauge("a");  // same name, different instrument kind
  Series& s1 = reg.series("a");
  c1.add(2);
  g1.set(1.5);
  s1.push(8.0);
  // Re-looking up (and creating more instruments) must not invalidate or
  // re-create anything: call sites cache references across layers/runs.
  reg.counter("b");
  reg.series("c").push(1.0);
  EXPECT_EQ(&reg.counter("a"), &c1);
  EXPECT_EQ(&reg.gauge("a"), &g1);
  EXPECT_EQ(&reg.series("a"), &s1);
  EXPECT_EQ(reg.counter("a").get(), 2);
}

TEST(MetricsRegistry, SnapshotsReflectEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("hits").add(3);
  reg.gauge("depth").set(2.5);
  reg.series("per_layer").push(1.0);
  reg.series("per_layer").push(0.5);

  const auto counters = reg.counter_values();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters.at("hits"), 3);

  const auto gauges = reg.gauge_values();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(gauges.at("depth"), 2.5);

  const auto series = reg.series_values();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series.at("per_layer"), (std::vector<double>{1.0, 0.5}));
}

TEST(MetricsRegistry, ResetZeroesButKeepsNamesRegistered) {
  MetricsRegistry reg;
  reg.counter("hits").add(3);
  reg.gauge("depth").set(2.5);
  reg.series("per_layer").push(1.0);
  reg.reset();
  EXPECT_EQ(reg.counter_values().at("hits"), 0);
  EXPECT_DOUBLE_EQ(reg.gauge_values().at("depth"), 0.0);
  EXPECT_TRUE(reg.series_values().at("per_layer").empty());
}

TEST(MetricsRegistry, JsonRoundTripsThroughParser) {
  MetricsRegistry reg;
  reg.counter("snicit.pruned_residues_total").add(12);
  reg.gauge("snicit.centroids").set(6.0);
  reg.series("snicit.active_columns").push(48.0);
  reg.series("snicit.active_columns").push(17.0);

  const auto doc = JsonValue::parse(reg.to_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(
      doc.get("counters").get("snicit.pruned_residues_total").as_number(),
      12.0);
  EXPECT_DOUBLE_EQ(doc.get("gauges").get("snicit.centroids").as_number(),
                   6.0);
  const auto& series = doc.get("series").get("snicit.active_columns");
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series.at(0).as_number(), 48.0);
  EXPECT_DOUBLE_EQ(series.at(1).as_number(), 17.0);
}

TEST(MetricsRegistry, ThreadSafeRecordingUnderThePool) {
  // One add + one slot write per chunk from pool workers; exercised by the
  // SNICIT_SANITIZE=thread build to prove the instruments race-free.
  constexpr std::size_t kChunks = 512;
  MetricsRegistry reg;
  Counter& hits = reg.counter("hits");
  Series& slots = reg.series("slots");
  Gauge& last = reg.gauge("last");
  ThreadPool pool(4);
  pool.run_chunks(kChunks, [&](std::size_t chunk) {
    hits.add(1);
    slots.record(chunk, static_cast<double>(chunk));
    last.set(static_cast<double>(chunk));
  });
  EXPECT_EQ(hits.get(), static_cast<std::int64_t>(kChunks));
  const auto values = slots.values();
  ASSERT_EQ(values.size(), kChunks);
  for (std::size_t i = 0; i < kChunks; ++i) {
    EXPECT_DOUBLE_EQ(values[i], static_cast<double>(i));
  }
  EXPECT_GE(last.get(), 0.0);
  EXPECT_LT(last.get(), static_cast<double>(kChunks));
}

TEST(MetricsEnabledFlag, GatesRecordingSites) {
  // The flag gates *engine call sites*, not the registry: a registry used
  // directly keeps working either way.
  const bool was = enabled();
  set_enabled(false);
  EXPECT_FALSE(enabled());
  MetricsRegistry reg;
  reg.counter("still_works").add(1);
  EXPECT_EQ(reg.counter_values().at("still_works"), 1);
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(was);
}

}  // namespace
}  // namespace snicit::platform::metrics
