#include "dnn/builder.hpp"

#include <gtest/gtest.h>

#include "dnn/reference.hpp"

namespace snicit::dnn {
namespace {

TEST(Builder, RandomLayerDensity) {
  DnnBuilder builder(64, 1.0f);
  const auto net =
      builder.add_random_layer(0.25, -1.0f, 1.0f, 5).build();
  EXPECT_EQ(net.num_layers(), 1u);
  EXPECT_NEAR(net.weight(0).density(), 0.25, 0.05);
  EXPECT_FLOAT_EQ(net.ymax(), 1.0f);
}

TEST(Builder, BandedLayerStructure) {
  DnnBuilder builder(8);
  const auto net = builder.add_banded_layer(1, 0.5f).build();
  const auto& w = net.weight(0);
  EXPECT_EQ(w.nnz(), 8 * 3);
  // Row 0 connects to 7, 0, 1 (wrapping).
  const auto cols = w.row_cols(0);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], 0);
  EXPECT_EQ(cols[1], 1);
  EXPECT_EQ(cols[2], 7);
  for (float v : w.row_vals(0)) {
    EXPECT_FLOAT_EQ(v, 0.5f);
  }
}

TEST(Builder, ExplicitTripletsAndBias) {
  DnnBuilder builder(3, 10.0f);
  const auto net = builder
                       .add_layer({{0, 1, 2.0f}, {2, 2, -1.0f}})
                       .with_bias(0.5f)
                       .with_name("explicit")
                       .build();
  EXPECT_EQ(net.name(), "explicit");
  EXPECT_TRUE(net.bias_is_constant(0));
  EXPECT_FLOAT_EQ(net.constant_bias(0), 0.5f);

  DenseMatrix x(3, 1);
  x.at(1, 0) = 2.0f;
  const auto y = reference_forward(net, x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 4.5f);  // 2*2 + 0.5
  EXPECT_FLOAT_EQ(y.at(1, 0), 0.5f);  // bias only
  EXPECT_FLOAT_EQ(y.at(2, 0), 0.5f);
}

TEST(Builder, VectorBias) {
  DnnBuilder builder(2, 1.0f);
  const auto net = builder.add_banded_layer(0, 1.0f)
                       .with_bias(std::vector<float>{0.1f, 0.2f})
                       .build();
  EXPECT_FALSE(net.bias_is_constant(0));
  EXPECT_FLOAT_EQ(net.bias(0)[1], 0.2f);
}

TEST(Builder, MultiLayerComposition) {
  DnnBuilder builder(16, 32.0f);
  builder.add_banded_layer(2, 0.1f).with_bias(-0.05f);
  builder.add_random_layer(0.5, 0.0f, 0.2f, 9);
  builder.add_banded_layer(0, 1.0f);
  const auto net = builder.build();
  EXPECT_EQ(net.num_layers(), 3u);
  EXPECT_FLOAT_EQ(net.constant_bias(0), -0.05f);
  EXPECT_FLOAT_EQ(net.constant_bias(1), 0.0f);  // default
}

TEST(Builder, ReusableAfterBuild) {
  DnnBuilder builder(4);
  builder.add_banded_layer(0, 1.0f);
  const auto first = builder.build();
  builder.add_banded_layer(1, 2.0f);
  const auto second = builder.build();
  EXPECT_EQ(first.num_layers(), 1u);
  EXPECT_EQ(second.num_layers(), 1u);
  EXPECT_EQ(second.weight(0).nnz(), 4 * 3);
}

TEST(BuilderDeathTest, BiasBeforeLayerAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        DnnBuilder builder(4);
        builder.with_bias(1.0f);
      },
      "with_bias");
}

TEST(BuilderDeathTest, BuildWithoutLayersAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        DnnBuilder builder(4);
        builder.build();
      },
      "no layers");
}

}  // namespace
}  // namespace snicit::dnn
