#include "data/idx_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>

namespace snicit::data {
namespace {

class IdxIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("snicit_idx_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

IdxImages tiny_images() {
  IdxImages images;
  images.count = 3;
  images.rows = 2;
  images.cols = 2;
  images.pixels = {0, 64, 128, 255, 1, 2, 3, 4, 250, 251, 252, 253};
  return images;
}

TEST_F(IdxIoTest, ImageRoundTrip) {
  const auto original = tiny_images();
  save_idx_images(original, path("imgs.idx3-ubyte"));
  const auto loaded = load_idx_images(path("imgs.idx3-ubyte"));
  EXPECT_EQ(loaded.count, 3u);
  EXPECT_EQ(loaded.rows, 2u);
  EXPECT_EQ(loaded.cols, 2u);
  EXPECT_EQ(loaded.pixels, original.pixels);
}

TEST_F(IdxIoTest, LabelRoundTrip) {
  const std::vector<std::uint8_t> labels = {0, 9, 4, 4, 7};
  save_idx_labels(labels, path("labels.idx1-ubyte"));
  EXPECT_EQ(load_idx_labels(path("labels.idx1-ubyte")), labels);
}

TEST_F(IdxIoTest, HeaderIsBigEndian) {
  save_idx_labels({1, 2, 3}, path("be.idx1-ubyte"));
  std::FILE* f = std::fopen(path("be.idx1-ubyte").c_str(), "rb");
  ASSERT_NE(f, nullptr);
  unsigned char header[8];
  ASSERT_EQ(std::fread(header, 1, 8, f), 8u);
  std::fclose(f);
  // Magic 0x00000801, count 3 — both big-endian.
  EXPECT_EQ(header[0], 0x00);
  EXPECT_EQ(header[2], 0x08);
  EXPECT_EQ(header[3], 0x01);
  EXPECT_EQ(header[7], 0x03);
}

TEST_F(IdxIoTest, WrongMagicThrows) {
  save_idx_labels({1}, path("l.idx1-ubyte"));
  EXPECT_THROW(load_idx_images(path("l.idx1-ubyte")), std::runtime_error);
  save_idx_images(tiny_images(), path("i.idx3-ubyte"));
  EXPECT_THROW(load_idx_labels(path("i.idx3-ubyte")), std::runtime_error);
}

TEST_F(IdxIoTest, TruncatedPayloadThrows) {
  save_idx_images(tiny_images(), path("trunc.idx3-ubyte"));
  std::filesystem::resize_file(path("trunc.idx3-ubyte"), 18);  // cut payload
  EXPECT_THROW(load_idx_images(path("trunc.idx3-ubyte")),
               std::runtime_error);
}

TEST_F(IdxIoTest, MissingFileThrows) {
  EXPECT_THROW(load_idx_images(path("missing")), std::runtime_error);
}

// --- Malformed-file corpus for the hardened try_* readers ---

TEST_F(IdxIoTest, TypedCodesForEveryRejectPath) {
  // Missing file.
  EXPECT_EQ(try_load_idx_images(path("missing")).code(),
            platform::ErrorCode::kBadInput);
  EXPECT_EQ(try_load_idx_labels(path("missing")).code(),
            platform::ErrorCode::kBadInput);
  // Wrong magic (a label file fed to the image reader and vice versa).
  save_idx_labels({1}, path("l.idx1-ubyte"));
  EXPECT_EQ(try_load_idx_images(path("l.idx1-ubyte")).code(),
            platform::ErrorCode::kBadInput);
  save_idx_images(tiny_images(), path("i.idx3-ubyte"));
  EXPECT_EQ(try_load_idx_labels(path("i.idx3-ubyte")).code(),
            platform::ErrorCode::kBadInput);
}

TEST_F(IdxIoTest, TruncatedHeaderRejected) {
  save_idx_images(tiny_images(), path("hdr.idx3-ubyte"));
  std::filesystem::resize_file(path("hdr.idx3-ubyte"), 10);  // mid-header
  const auto result = try_load_idx_images(path("hdr.idx3-ubyte"));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("truncated IDX header"),
            std::string::npos);
}

TEST_F(IdxIoTest, TrailingBytesRejected) {
  save_idx_images(tiny_images(), path("extra.idx3-ubyte"));
  {
    std::FILE* f = std::fopen(path("extra.idx3-ubyte").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputc('x', f);
    std::fclose(f);
  }
  const auto result = try_load_idx_images(path("extra.idx3-ubyte"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), platform::ErrorCode::kBadInput);
  EXPECT_NE(result.error().message.find("trailing bytes"),
            std::string::npos);
}

TEST_F(IdxIoTest, HostileDimensionsRejectedBeforeAllocation) {
  // Header claiming 2^32-1 images of 2^32-1 x 2^32-1 pixels: must be
  // rejected by the payload cap, not by attempting the allocation.
  std::FILE* f = std::fopen(path("huge.idx3-ubyte").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const unsigned char header[16] = {0, 0, 8, 3,                  // magic
                                    0xFF, 0xFF, 0xFF, 0xFF,      // count
                                    0xFF, 0xFF, 0xFF, 0xFF,      // rows
                                    0xFF, 0xFF, 0xFF, 0xFF};     // cols
  ASSERT_EQ(std::fwrite(header, 1, sizeof(header), f), sizeof(header));
  std::fclose(f);
  const auto result = try_load_idx_images(path("huge.idx3-ubyte"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), platform::ErrorCode::kBadInput);
  EXPECT_NE(result.error().message.find("implausible"), std::string::npos);
}

TEST_F(IdxIoTest, CleanFilesStillLoadThroughTryApi) {
  save_idx_images(tiny_images(), path("ok.idx3-ubyte"));
  const auto result = try_load_idx_images(path("ok.idx3-ubyte"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().pixels, tiny_images().pixels);
}

TEST(IdxToDataset, ScalesAndFlattens) {
  IdxImages images;
  images.count = 2;
  images.rows = 1;
  images.cols = 3;
  images.pixels = {0, 255, 51, 102, 153, 204};
  const auto ds = idx_to_dataset(images, {7, 2});
  EXPECT_EQ(ds.dim(), 3u);
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_FLOAT_EQ(ds.features.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(ds.features.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(ds.features.at(2, 0), 0.2f);
  EXPECT_FLOAT_EQ(ds.features.at(0, 1), 0.4f);
  EXPECT_EQ(ds.labels[0], 7);
  EXPECT_EQ(ds.labels[1], 2);
}

}  // namespace
}  // namespace snicit::data
