#include "snicit/sample_prune.hpp"

#include <gtest/gtest.h>

#include "platform/rng.hpp"

namespace snicit::core {
namespace {

TEST(SamplePrune, IdenticalColumnsCollapseToOne) {
  DenseMatrix f(4, 5, 1.0f);  // five identical columns
  const auto centroids = prune_samples(f, 0.03f, 0.03f);
  ASSERT_EQ(centroids.size(), 1u);
  EXPECT_EQ(centroids[0], 0);  // the first column survives as base
}

TEST(SamplePrune, DistinctColumnsAllSurvive) {
  DenseMatrix f(4, 3);
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t r = 0; r < 4; ++r) {
      f.at(r, j) = static_cast<float>(j);  // columns 0, 1, 2 very far apart
    }
  }
  const auto centroids = prune_samples(f, 0.03f, 0.5f);
  EXPECT_EQ(centroids.size(), 3u);
}

TEST(SamplePrune, TwoClassesYieldTwoCentroids) {
  // Columns 0,1,3 ~ class A; columns 2,4 ~ class B (small jitter < eta).
  DenseMatrix f(8, 5);
  for (std::size_t j : {0u, 1u, 3u}) {
    for (std::size_t r = 0; r < 8; ++r) {
      f.at(r, j) = 1.0f + 0.001f * static_cast<float>(j);
    }
  }
  for (std::size_t j : {2u, 4u}) {
    for (std::size_t r = 0; r < 8; ++r) {
      f.at(r, j) = 5.0f + 0.001f * static_cast<float>(j);
    }
  }
  const auto centroids = prune_samples(f, 0.03f, 0.03f);
  ASSERT_EQ(centroids.size(), 2u);
  EXPECT_EQ(centroids[0], 0);
  EXPECT_EQ(centroids[1], 2);
}

TEST(SamplePrune, EpsilonControlsToleratedDifferences) {
  // Columns differ in exactly 1 of 10 elements.
  DenseMatrix f(10, 2, 2.0f);
  f.at(0, 1) = 10.0f;
  // n*eps = 10*0.05 = 0.5 -> 1 differing element is too many: both kept.
  EXPECT_EQ(prune_samples(f, 0.03f, 0.05f).size(), 2u);
  // n*eps = 10*0.2 = 2 -> 1 differing element tolerated: merged.
  EXPECT_EQ(prune_samples(f, 0.03f, 0.2f).size(), 1u);
}

TEST(SamplePrune, EtaControlsElementSimilarity) {
  DenseMatrix f(4, 2, 1.0f);
  for (std::size_t r = 0; r < 4; ++r) {
    f.at(r, 1) = 1.02f;  // all elements differ by 0.02
  }
  // eta = 0.03: 0.02 difference is "same" everywhere -> merged.
  EXPECT_EQ(prune_samples(f, 0.03f, 0.03f).size(), 1u);
  // eta = 0.01: every element differs -> both survive.
  EXPECT_EQ(prune_samples(f, 0.01f, 0.03f).size(), 2u);
}

TEST(SamplePrune, SingleColumnSurvives) {
  DenseMatrix f(6, 1, 3.0f);
  const auto centroids = prune_samples(f, 0.03f, 0.03f);
  ASSERT_EQ(centroids.size(), 1u);
  EXPECT_EQ(centroids[0], 0);
}

TEST(SamplePrune, ResultSortedAscending) {
  platform::Rng rng(3);
  DenseMatrix f(16, 12);
  for (std::size_t j = 0; j < 12; ++j) {
    for (std::size_t r = 0; r < 16; ++r) {
      f.at(r, j) = rng.uniform(0.0f, 10.0f);
    }
  }
  const auto centroids = prune_samples(f, 0.03f, 0.03f);
  for (std::size_t k = 1; k < centroids.size(); ++k) {
    EXPECT_LT(centroids[k - 1], centroids[k]);
  }
}

TEST(SamplePrune, TransitiveChainCollapsesToFirstBase) {
  // col1 close to col0, col2 close to col1 but NOT to col0: Algorithm 1
  // is greedy — col1 is pruned by col0, col2 is then compared against
  // col0 only and survives.
  DenseMatrix f(10, 3, 0.0f);
  for (std::size_t r = 0; r < 10; ++r) {
    f.at(r, 0) = 0.0f;
    f.at(r, 1) = 0.02f;  // within eta of col0
    f.at(r, 2) = 0.04f;  // within eta of col1, outside eta of col0
  }
  const auto centroids = prune_samples(f, 0.03f, 0.03f);
  ASSERT_EQ(centroids.size(), 2u);
  EXPECT_EQ(centroids[0], 0);
  EXPECT_EQ(centroids[1], 2);
}

// Property sweep: k well-separated synthetic classes always produce
// exactly k centroids regardless of samples-per-class.
class PruneClassSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PruneClassSweep, RecoversClassCount) {
  const auto [classes, per_class] = GetParam();
  platform::Rng rng(classes * 31 + per_class);
  const std::size_t n = 12;
  DenseMatrix f(n, static_cast<std::size_t>(classes * per_class));
  // Class c has values near 10*c; jitter stays below eta.
  for (int j = 0; j < classes * per_class; ++j) {
    const int c = j % classes;
    for (std::size_t r = 0; r < n; ++r) {
      f.at(r, static_cast<std::size_t>(j)) =
          10.0f * static_cast<float>(c) + rng.uniform(-0.01f, 0.01f);
    }
  }
  const auto centroids = prune_samples(f, 0.05f, 0.03f);
  EXPECT_EQ(centroids.size(), static_cast<std::size_t>(classes));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PruneClassSweep,
                         ::testing::Combine(::testing::Values(1, 2, 5, 10),
                                            ::testing::Values(1, 3, 8)));

}  // namespace
}  // namespace snicit::core
